// Full-stack telemetry guarantees, asserted under the same seeded 50-fault
// chaos soak as tests/smrp/test_chaos.cpp:
//
//  * span discipline — every repair span is closed by the protocol exactly
//    once, children nest inside their parents, and the span count equals
//    the session's own repair-episode counter;
//  * determinism — attaching telemetry does not change a seeded run
//    (bit-identical tree, counters, and message totals vs. detached);
//  * measurement agreement — an outage span's total matches the payload
//    gap an external observer measures, which is what ties trace_report's
//    waterfall totals to bench_chaos_recovery's interruption gaps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"

namespace smrp::proto {
namespace {

constexpr std::uint64_t kSoakSeed = 20050628;  // DSN'05 publication date

/// Unit-weight ring of `n` nodes (same sparse topology as the chaos suite:
/// detours are long, so ring searches exhaust and fallbacks fire).
net::Graph soak_ring(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

/// Outcome fingerprint of a soak run: everything the protocol and the
/// message layer can disagree on if telemetry perturbed the simulation.
struct SoakFingerprint {
  std::vector<net::NodeId> parents;
  std::vector<sim::Time> last_data;
  int repairs_started = 0;
  int repairs_completed = 0;
  int reshapes = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;

  bool operator==(const SoakFingerprint&) const = default;
};

struct SoakRun {
  SoakFingerprint fingerprint;
  int repairs_started = 0;
  sim::Time end_time = 0.0;
};

/// The standard 50-fault soak (12-node ring, members 3/6/9, source 0),
/// optionally with `telemetry` attached for the whole run.
SoakRun run_soak(obs::Telemetry* telemetry) {
  const net::Graph g = soak_ring(12);
  const net::NodeId source = 0;
  const std::vector<net::NodeId> members{3, 6, 9};

  SessionConfig config;
  config.max_repair_ttl = 4;  // exhaustion + fallback are reachable
  SimulationHarness h(g, source, config);
  h.attach_telemetry(telemetry);

  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;
  params.window = 20'000.0;
  params.protected_nodes = {source};
  net::Rng rng(kSoakSeed);
  sim::ChaosController chaos(h.simulator(), h.network(),
                             sim::FaultPlan::randomized(g, params, rng));
  h.start();
  for (const net::NodeId m : members) h.session().join(m);
  chaos.arm();

  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(chaos.quiescent_time() + bound);

  SoakRun run;
  run.end_time = h.simulator().now();
  run.repairs_started = h.session().repairs_started();
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    run.fingerprint.parents.push_back(h.session().parent_of(n));
    run.fingerprint.last_data.push_back(h.session().last_data_at(n));
  }
  run.fingerprint.repairs_started = h.session().repairs_started();
  run.fingerprint.repairs_completed = h.session().repairs_completed();
  run.fingerprint.reshapes = h.session().reshapes_performed();
  run.fingerprint.sent = h.network().messages_sent();
  run.fingerprint.delivered = h.network().messages_delivered();
  run.fingerprint.dropped = h.network().messages_dropped();
  return run;
}

TEST(TelemetrySoak, EveryRepairSpanClosesExactlyOnceAndNestsInItsOutage) {
  obs::Telemetry telemetry;
  const SoakRun run = run_soak(&telemetry);
  telemetry.finish(run.end_time);

  const obs::SpanCollector& spans = telemetry.spans;
  EXPECT_EQ(spans.double_closes(), 0u)
      << "some instrumentation site closed a span twice";
  EXPECT_EQ(spans.open_count(), 0u);

  // The soak produces real work to observe.
  ASSERT_GT(run.repairs_started, 0);
  EXPECT_GT(spans.count("outage"), 0u);
  EXPECT_GE(spans.count("ring"), spans.count("repair"));

  // One repair span per repair episode, no more, no less: repair spans are
  // opened only at start_repair, adjacent to the episode counter.
  EXPECT_EQ(spans.count("repair"),
            static_cast<std::size_t>(run.repairs_started));

  for (const obs::Span& span : spans.spans()) {
    EXPECT_FALSE(span.open()) << "span " << span.id << " left open";

    // The protocol — not the end-of-run flush — must resolve every repair
    // episode: adopted (ok), exhausted or crash-wiped (failed), or mooted
    // by a prune/restart (superseded).
    if (span.kind == "repair") {
      EXPECT_NE(span.status, obs::SpanStatus::kTruncated)
          << "repair span " << span.id << " only closed by the flush";
      EXPECT_NE(span.attr("rings"), nullptr)
          << "repair span " << span.id << " closed without its ring count";
    }

    if (span.parent == obs::kNoSpan) continue;
    const obs::Span* parent = spans.find(span.parent);
    ASSERT_NE(parent, nullptr) << "span " << span.id << " has ghost parent";
    EXPECT_LE(parent->start, span.start)
        << span.kind << " span " << span.id << " starts before its parent";
    // Convergence spans are the one sanctioned exception to nesting: they
    // measure how long the in-protocol detector lagged the oracle close,
    // so they end after their outage parent by construction.
    if (span.kind != "convergence") {
      EXPECT_GE(parent->end, span.end)
          << span.kind << " span " << span.id << " outlives its parent";
    }
    // The taxonomy is fixed: rings hang off repairs; repairs, grafts,
    // fallbacks, rejoin legs and convergence confirmations hang off
    // outages.
    if (span.kind == "ring") {
      EXPECT_EQ(parent->kind, "repair");
    } else if (span.kind == "repair" || span.kind == "graft" ||
               span.kind == "fallback" || span.kind == "rejoin" ||
               span.kind == "convergence") {
      EXPECT_EQ(parent->kind, "outage");
    }
  }
}

TEST(TelemetrySoak, AttachedAndDetachedRunsAreBitIdentical) {
  obs::Telemetry telemetry;
  const SoakRun with = run_soak(&telemetry);
  const SoakRun without = run_soak(nullptr);

  // Telemetry never touches the RNG or the event queue, so the seeded run
  // must not notice it: same tree, same episode counters, same message
  // totals, payload-for-payload.
  EXPECT_EQ(with.fingerprint, without.fingerprint);

  // And the attached run actually observed something (the guard is not
  // vacuous because telemetry silently detached).
  EXPECT_GT(telemetry.spans.spans().size(), 0u);
  EXPECT_GT(telemetry.metrics.counters().size(), 0u);
}

TEST(TelemetrySoak, DetachedSoakRecordsNothing) {
  obs::Telemetry telemetry;
  const net::Graph g = soak_ring(8);  // harness layers reference the graph
  SimulationHarness h(g, 0);
  h.attach_telemetry(&telemetry);
  h.attach_telemetry(nullptr);  // detach again before anything runs
  h.start();
  h.session().join(4);
  h.simulator().run_until(2'000.0);
  // Attaching registers instrument names (handles are resolved eagerly),
  // but after the detach nothing may be recorded through them.
  EXPECT_TRUE(telemetry.spans.spans().empty());
  for (const auto& [name, counter] : telemetry.metrics.counters()) {
    EXPECT_EQ(counter.value(), 0u) << name;
  }
  for (const auto& [name, hist] : telemetry.metrics.histograms()) {
    EXPECT_EQ(hist.count(), 0u) << name;
  }
}

TEST(TelemetrySoak, OutageSpanTotalMatchesExternallyMeasuredPayloadGap) {
  // One deterministic flap of the member's tree link, with the payload gap
  // measured the way bench_chaos_recovery measures it: watch last_data_at
  // from outside and take the largest inter-payload interval.
  const net::Graph g = soak_ring(8);
  const net::NodeId member = 4;
  obs::Telemetry telemetry;
  SimulationHarness h(g, 0);
  h.attach_telemetry(&telemetry);
  h.start();
  h.session().join(member);
  h.simulator().run_until(2'000.0);

  const net::NodeId parent = h.session().parent_of(member);
  ASSERT_NE(parent, net::kNoNode);
  const auto link = g.link_between(member, parent);
  ASSERT_TRUE(link.has_value());
  h.fail_link_at(*link, 2'000.0);
  h.restore_link_at(*link, 3'200.0);

  sim::Time prev_payload = h.session().last_data_at(member);
  double measured_gap = 0.0;
  for (sim::Time t = 2'001.0; t <= 8'000.0; t += 1.0) {
    h.simulator().run_until(t);
    const sim::Time at = h.session().last_data_at(member);
    if (at != prev_payload) {
      measured_gap = std::max(measured_gap, at - prev_payload);
      prev_payload = at;
    }
  }
  telemetry.finish(h.simulator().now());

  std::vector<const obs::Span*> outages;
  for (const obs::Span& span : telemetry.spans.spans()) {
    if (span.kind == "outage" && span.node == member &&
        span.status == obs::SpanStatus::kOk) {
      outages.push_back(&span);
    }
  }
  ASSERT_EQ(outages.size(), 1u)
      << "expected exactly one restored outage at the member";
  const double* total = outages.front()->attr("total_ms");
  ASSERT_NE(total, nullptr);
  // The span carries the same payload-to-payload interval the external
  // observer saw: its service_lost_at anchor is the last payload before
  // the failure and its close is the first payload after restoration.
  EXPECT_GT(*total, 100.0);  // a real interruption, not sampling noise
  EXPECT_NEAR(*total, measured_gap, 1e-6);
}

}  // namespace
}  // namespace smrp::proto
