// Periodic gauge sampling and end-of-run sealing:
//
//  * maybe_sample() snapshots every gauge when sim time crosses a period
//    boundary, re-anchoring across event gaps (one snapshot per gap, not a
//    back-filled burst);
//  * finish() is idempotent, takes a closing snapshot, and seals the span
//    and event collectors — late emission is counted, never recorded;
//  * the JSONL export of a run killed mid-outage is byte-identical whether
//    the open spans were truncated by the online exporter or flushed by
//    finish() first (events interleaved with truncated spans included) —
//    modulo the meta line's open-span count, which is the one honest
//    difference between a live and a flushed bundle.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/telemetry.hpp"

namespace smrp::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::string snapshot(const Telemetry& telemetry, double now) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write_snapshot(telemetry, now, "kill-test");
  return out.str();
}

TEST(GaugeSampler, DisarmedByDefaultAndOnNonPositivePeriods) {
  Telemetry t;
  t.metrics.gauge("g").set(1.0);
  EXPECT_FALSE(t.sampling_enabled());
  t.enable_sampling(0.0);
  t.enable_sampling(-5.0);
  EXPECT_FALSE(t.sampling_enabled());
  t.maybe_sample(10'000.0);
  EXPECT_TRUE(t.samples().empty());
}

TEST(GaugeSampler, SnapshotsEveryGaugeAtPeriodBoundaries) {
  Telemetry t;
  t.enable_sampling(100.0);
  t.metrics.gauge("smrp.sim.queue_depth").set(3.0);
  t.metrics.gauge("smrp.sim.pool_free").set(7.0);

  t.maybe_sample(50.0);  // before the first boundary
  EXPECT_TRUE(t.samples().empty());

  t.maybe_sample(100.0);  // due exactly on the boundary
  ASSERT_EQ(t.samples().size(), 2u);  // one row per gauge, name-ordered
  EXPECT_EQ(t.samples()[0].name, "smrp.sim.pool_free");
  EXPECT_EQ(t.samples()[0].t, 100.0);
  EXPECT_EQ(t.samples()[0].value, 7.0);
  EXPECT_EQ(t.samples()[1].name, "smrp.sim.queue_depth");
  EXPECT_EQ(t.samples()[1].value, 3.0);

  t.maybe_sample(150.0);  // not due again until 200
  EXPECT_EQ(t.samples().size(), 2u);
}

TEST(GaugeSampler, LongEventGapYieldsOneSnapshotNotABurst) {
  Telemetry t;
  t.enable_sampling(100.0);
  t.metrics.gauge("g").set(1.0);
  // Sim time jumps straight from 0 to 750: gauges cannot have changed in
  // between (they only move at events), so back-filling 7 identical rows
  // would be noise. One row, stamped at the event that crossed the
  // boundary; the next due time re-anchors past `now`.
  t.maybe_sample(750.0);
  ASSERT_EQ(t.samples().size(), 1u);
  EXPECT_EQ(t.samples()[0].t, 750.0);
  t.maybe_sample(799.0);
  EXPECT_EQ(t.samples().size(), 1u);
  t.maybe_sample(800.0);
  EXPECT_EQ(t.samples().size(), 2u);
}

TEST(GaugeSampler, FinishTakesAClosingSnapshotExactlyOnce) {
  Telemetry t;
  t.enable_sampling(100.0);
  t.metrics.gauge("g").set(2.0);
  t.maybe_sample(100.0);
  ASSERT_EQ(t.samples().size(), 1u);
  t.finish(130.0);  // closing snapshot at an off-boundary instant
  ASSERT_EQ(t.samples().size(), 2u);
  EXPECT_EQ(t.samples()[1].t, 130.0);
  // Idempotent: a second finish (exporter convenience path) adds nothing.
  t.finish(130.0);
  t.finish(500.0);
  EXPECT_EQ(t.samples().size(), 2u);
  // And the sampler is dead after the run ended.
  t.maybe_sample(1'000.0);
  EXPECT_EQ(t.samples().size(), 2u);
}

TEST(GaugeSampler, FinishSkipsTheClosingSnapshotWhenAlreadyCurrent) {
  Telemetry t;
  t.enable_sampling(100.0);
  t.metrics.gauge("g").set(2.0);
  t.maybe_sample(200.0);
  ASSERT_EQ(t.samples().size(), 1u);
  t.finish(200.0);  // the last sample is already stamped at `now`
  EXPECT_EQ(t.samples().size(), 1u);
}

TEST(TelemetryFinish, IsIdempotentAndSealsAgainstLateEmission) {
  Telemetry t;
  const SpanId outage = t.spans.open("outage", 3, 100.0);
  t.events.record("deliver", 3, 150.0, {{"seq", 1.0}});
  t.finish(200.0);

  // The flush truncated the open span exactly once.
  const Span* span = t.spans.find(outage);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->status, SpanStatus::kTruncated);
  EXPECT_EQ(span->end, 200.0);
  EXPECT_TRUE(t.finished());
  EXPECT_TRUE(t.spans.sealed());
  EXPECT_TRUE(t.events.sealed());

  // A second finish must not re-truncate or double-close anything.
  t.finish(300.0);
  EXPECT_EQ(t.spans.find(outage)->end, 200.0);
  EXPECT_EQ(t.spans.double_closes(), 0u);

  // Emission after the flush is a discipline bug: counted, not recorded.
  EXPECT_EQ(t.spans.open("outage", 4, 300.0), kNoSpan);
  t.events.record("deliver", 4, 300.0);
  EXPECT_EQ(t.spans.spans().size(), 1u);
  EXPECT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.spans.late_opens(), 1u);
  EXPECT_EQ(t.events.late_records(), 1u);
}

TEST(JsonlRoundTrip, KilledMidOutageExportsIdenticallyOnlineAndFlushed) {
  // A run cut off mid-outage: a closed repair inside a still-open outage,
  // with events interleaved around the truncation point.
  const double killed_at = 900.0;
  Telemetry t;
  t.enable_sampling(250.0);
  t.metrics.counter("smrp.sim.events").add(41);
  t.metrics.gauge("smrp.sim.queue_depth").set(5.0);
  t.metrics.histogram("smrp.proto.outage_ms").record(320.0);
  t.events.record("forward", 2, 180.0, {{"on_tree", 1.0}});
  const SpanId outage = t.spans.open("outage", 6, 200.0);
  const SpanId repair = t.spans.open("repair", 6, 240.0, outage);
  t.spans.attr(repair, "rings", 2.0);
  t.spans.close(repair, 410.0, SpanStatus::kOk);
  t.events.record("deliver", 6, 420.0, {{"seq", 7.0}});
  t.maybe_sample(500.0);
  const SpanId graft = t.spans.open("graft", 6, 800.0, outage);
  (void)graft;  // left open: the kill truncates it mid-flight

  // Online: the exporter snapshots the LIVE bundle the instant the run is
  // killed — open spans are emitted as truncated at `killed_at`. The
  // simulator pumps maybe_sample() at every event, so the due sample at
  // the kill instant has already been taken when the exporter runs.
  t.maybe_sample(killed_at);
  const std::string online = snapshot(t, killed_at);

  // Offline: the bundle is flushed first (finish truncates the same spans
  // at the same instant), then exported.
  t.finish(killed_at);
  const std::string flushed = snapshot(t, killed_at);

  const std::vector<std::string> online_lines = lines_of(online);
  const std::vector<std::string> flushed_lines = lines_of(flushed);
  ASSERT_EQ(online_lines.size(), flushed_lines.size());
  ASSERT_GT(online_lines.size(), 1u);

  // Every record line is byte-identical: same span truncation judgement,
  // same event interleaving, same samples (finish skips its closing
  // snapshot because the last sample is already stamped at `killed_at`).
  for (std::size_t i = 1; i < online_lines.size(); ++i) {
    EXPECT_EQ(online_lines[i], flushed_lines[i]) << "line " << i;
  }

  // The meta line may only disagree on the open-span count: 2 live vs 0
  // after the flush. That is the one honest difference.
  EXPECT_NE(online_lines[0].find("\"open_spans\":2"), std::string::npos)
      << online_lines[0];
  EXPECT_NE(flushed_lines[0].find("\"open_spans\":0"), std::string::npos)
      << flushed_lines[0];
  std::string normalized = flushed_lines[0];
  const auto pos = normalized.find("\"open_spans\":0");
  ASSERT_NE(pos, std::string::npos);
  normalized.replace(pos, 14, "\"open_spans\":2");
  EXPECT_EQ(online_lines[0], normalized);
}

}  // namespace
}  // namespace smrp::obs
