// MetricsRegistry and instrument semantics: exact Welford moments, the
// shared percentile definition, histogram merging (the property campaign
// aggregation relies on), and registry handle stability.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace smrp::obs {
namespace {

TEST(Counter, AccumulatesAndMerges) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.add();
  a.add(41);
  EXPECT_EQ(a.value(), 42u);
  Counter b;
  b.add(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(Gauge, TracksLastValueAndPeak) {
  Gauge g;
  g.set(3.0);
  g.set(9.0);
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
}

TEST(Gauge, MergeKeepsOtherRunsLastValueAndJointPeak) {
  Gauge a;
  a.set(10.0);
  Gauge b;
  b.set(20.0);
  b.set(4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 4.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);

  // Merging a never-set gauge is a no-op.
  Gauge untouched;
  a.merge(untouched);
  EXPECT_DOUBLE_EQ(a.value(), 4.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(Histogram, EmptyIsZeroed) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, MomentsAreExactRegardlessOfBuckets) {
  // Moments come from Welford accumulation, not bucket midpoints, so even
  // a one-bucket histogram reports them exactly.
  Histogram h({1.0});
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.record(x);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.sum(), 40.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(h.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, PercentilesInterpolateAndClampToObservedRange) {
  Histogram h({10.0, 20.0, 30.0, 40.0});
  for (int i = 0; i < 100; ++i) h.record(5.0 + (i % 4) * 10.0);  // 5,15,25,35
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 25.0);
  // Extremes clamp to the observed min/max, never a bucket bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 35.0);
  // Monotone in q.
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
}

TEST(Histogram, ValuesAboveLastBoundLandInOverflow) {
  Histogram h({1.0, 2.0});
  h.record(100.0);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Percentiles still clamp to the observed max even in overflow.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
}

TEST(Histogram, MergeEqualsRecordingTheUnion) {
  std::mt19937_64 rng(20050628);
  std::uniform_real_distribution<double> dist(0.0, 50.0);
  Histogram a({5.0, 10.0, 20.0, 40.0});
  Histogram b({5.0, 10.0, 20.0, 40.0});
  Histogram all({5.0, 10.0, 20.0, 40.0});
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    (i % 2 ? a : b).record(x);
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.bucket_counts(), all.bucket_counts());
  EXPECT_DOUBLE_EQ(a.percentile(0.9), all.percentile(0.9));
}

TEST(Histogram, MergeWithEmptySidesIsSafe) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  b.record(1.5);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 1u);
  Histogram c({1.0, 2.0});
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& c = reg.counter("smrp.sim.events");
  c.add(3);
  // Creating more instruments must not invalidate the earlier handle.
  for (int i = 0; i < 64; ++i) {
    reg.counter("smrp.sim.tx." + std::to_string(i));
  }
  c.add(4);
  EXPECT_EQ(reg.counter("smrp.sim.events").value(), 7u);
  EXPECT_EQ(&reg.counter("smrp.sim.events"), &c);
}

TEST(MetricsRegistry, FirstHistogramCallerFixesBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("smrp.proto.repair.rings_per_episode",
                               {1.0, 2.0, 4.0});
  EXPECT_EQ(h.bounds().size(), 3u);
  // A later caller with different bounds gets the existing instrument.
  Histogram& again =
      reg.histogram("smrp.proto.repair.rings_per_episode", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), 3u);
  // Empty bounds mean the default latency buckets.
  EXPECT_EQ(reg.histogram("smrp.proto.outage_ms").bounds(),
            Histogram::default_latency_bounds());
}

TEST(MetricsRegistry, MergeFoldsRunsInstrumentByInstrument) {
  MetricsRegistry a;
  a.counter("smrp.proto.watchdog_fired").add(2);
  a.histogram("smrp.bench.gap_ms").record(120.0);
  MetricsRegistry b;
  b.counter("smrp.proto.watchdog_fired").add(3);
  b.counter("smrp.proto.repair.fallbacks").add(1);
  b.histogram("smrp.bench.gap_ms").record(480.0);
  b.gauge("smrp.sim.queue_depth").set(17.0);

  a.merge(b);
  EXPECT_EQ(a.counters().at("smrp.proto.watchdog_fired").value(), 5u);
  EXPECT_EQ(a.counters().at("smrp.proto.repair.fallbacks").value(), 1u);
  EXPECT_EQ(a.histograms().at("smrp.bench.gap_ms").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histograms().at("smrp.bench.gap_ms").mean(), 300.0);
  EXPECT_DOUBLE_EQ(a.gauges().at("smrp.sim.queue_depth").max(), 17.0);
}

TEST(MetricsRegistry, IterationOrderIsNameOrder) {
  MetricsRegistry reg;
  reg.counter("smrp.z");
  reg.counter("smrp.a");
  reg.counter("smrp.m");
  std::string prev;
  for (const auto& [name, counter] : reg.counters()) {
    EXPECT_LT(prev, name);
    prev = name;
  }
}

}  // namespace
}  // namespace smrp::obs
