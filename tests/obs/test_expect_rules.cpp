// Rule layer of the expectations engine: the builder API validates its
// arguments, the line-oriented rule format parses with line-numbered
// errors, and the shipped SMRP core ruleset round-trips between its file
// form and the builder form (so the two entry points can never drift).
#include "obs/expect/rules.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace smrp::obs::expect {
namespace {

TEST(ExpectRules, DescribeRendersRuleFileSyntax) {
  RuleSet set;
  set.require_status("a", "outage", {"ok", "superseded"})
      .require_child("b", "outage", 2, {"repair", "graft"})
      .require_attr_le("c", "ring", "ttl", "ttl_cap")
      .require_attr_le("d", "ring", "ttl", 4.0)
      .require_flag("e", "forward", "on_tree")
      .require_monotone("f", "deliver", "seq")
      .require_follows("g", "restart", "deliver", "member")
      .require_follows("h", "restart", "deliver");
  ASSERT_EQ(set.rules().size(), 8u);
  EXPECT_EQ(set.rules()[0].describe(), "status outage ok,superseded");
  EXPECT_EQ(set.rules()[1].describe(), "child outage 2 repair,graft");
  EXPECT_EQ(set.rules()[2].describe(), "attr-le ring ttl ttl_cap");
  EXPECT_EQ(set.rules()[3].describe(), "attr-le ring ttl 4");
  EXPECT_EQ(set.rules()[4].describe(), "flag forward on_tree");
  EXPECT_EQ(set.rules()[5].describe(), "monotone deliver seq");
  EXPECT_EQ(set.rules()[6].describe(), "follows restart deliver if member");
  EXPECT_EQ(set.rules()[7].describe(), "follows restart deliver");
}

TEST(ExpectRules, BuilderValidatesArguments) {
  RuleSet set;
  EXPECT_THROW(set.require_status("", "outage", {"ok"}), std::invalid_argument);
  EXPECT_THROW(set.require_status("a", "", {"ok"}), std::invalid_argument);
  EXPECT_THROW(set.require_status("a", "outage", {}), std::invalid_argument);
  EXPECT_THROW(set.require_child("a", "outage", 0, {"repair"}),
               std::invalid_argument);
  EXPECT_THROW(set.require_child("a", "outage", 1, {}), std::invalid_argument);
  EXPECT_THROW(set.require_attr_le("a", "ring", "", "cap"),
               std::invalid_argument);
  EXPECT_THROW(set.require_attr_le("a", "ring", "ttl", std::string{}),
               std::invalid_argument);
  EXPECT_THROW(set.require_flag("a", "forward", ""), std::invalid_argument);
  EXPECT_THROW(set.require_monotone("a", "deliver", ""),
               std::invalid_argument);
  EXPECT_THROW(set.require_follows("a", "restart", ""), std::invalid_argument);
  set.require_status("dup", "outage", {"ok"});
  EXPECT_THROW(set.require_flag("dup", "forward", "on_tree"),
               std::invalid_argument);
}

TEST(ExpectRules, ParserAcceptsCommentsAndBlankLines) {
  const RuleSet set = RuleSet::parse_text(
      "# header comment\n"
      "\n"
      "rule a status outage ok,superseded   # trailing comment\n"
      "rule b attr-le ring ttl 4\n");
  ASSERT_EQ(set.rules().size(), 2u);
  EXPECT_EQ(set.rules()[0].name, "a");
  EXPECT_EQ(set.rules()[0].allowed.size(), 2u);
  EXPECT_EQ(set.rules()[1].check, Check::kAttrLe);
  EXPECT_TRUE(set.rules()[1].cap_attr.empty());
  EXPECT_DOUBLE_EQ(set.rules()[1].cap_value, 4.0);
}

TEST(ExpectRules, AttrLeCapMayNameAnotherAttribute) {
  const RuleSet set = RuleSet::parse_text("rule a attr-le ring ttl ttl_cap\n");
  ASSERT_EQ(set.rules().size(), 1u);
  EXPECT_EQ(set.rules()[0].cap_attr, "ttl_cap");
}

TEST(ExpectRules, ParserReportsLineNumbers) {
  const auto expect_error_on_line = [](const std::string& text, int line) {
    try {
      (void)RuleSet::parse_text(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what())
                    .find("line " + std::to_string(line)),
                std::string::npos)
          << e.what();
    }
  };
  expect_error_on_line("# fine\nnonsense a b\n", 2);
  expect_error_on_line("rule a bogus-check outage ok\n", 1);
  expect_error_on_line("rule a status outage ok extra-token\n", 1);
  expect_error_on_line("rule a follows restart deliver when member\n", 1);
  expect_error_on_line("rule a status outage ok\nrule a flag forward x\n", 2);
  expect_error_on_line("rule a child outage 0 repair\n", 1);
}

TEST(ExpectRules, CoreRoundTripsThroughTheParser) {
  const RuleSet core = RuleSet::smrp_core();
  EXPECT_EQ(core.rules().size(), 11u);
  // File form -> parser -> file form is a fixed point.
  const RuleSet reparsed = RuleSet::parse_text(core.to_text());
  EXPECT_EQ(reparsed.to_text(), core.to_text());
  // And the shipped text is exactly the parsed set.
  EXPECT_EQ(RuleSet::parse_text(RuleSet::smrp_core_text()).to_text(),
            core.to_text());
}

TEST(ExpectRules, LoadResolvesCoreAndRejectsMissingFiles) {
  EXPECT_EQ(RuleSet::load("core").to_text(), RuleSet::smrp_core().to_text());
  EXPECT_THROW(RuleSet::load("/no/such/rules.expect"), std::invalid_argument);
}

}  // namespace
}  // namespace smrp::obs::expect
