// Offline replay: recorded JSONL fed back through the same checker the
// simulation taps online. The headline property — replaying a telemetry
// bundle's own export yields a byte-identical report — plus the run-label
// glob filter, multi-section files, and line-numbered input errors.
#include "obs/expect/offline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/jsonl.hpp"

namespace smrp::obs::expect {
namespace {

TEST(ExpectGlob, MatchesShellStylePatterns) {
  EXPECT_TRUE(glob_match("", "anything"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("smrp", "smrp"));
  EXPECT_FALSE(glob_match("smrp", "pim"));
  EXPECT_TRUE(glob_match("smrp*", "smrp seed=7"));
  EXPECT_FALSE(glob_match("smrp*", "pim seed=7"));
  EXPECT_TRUE(glob_match("*seed=7", "smrp seed=7"));
  EXPECT_TRUE(glob_match("*seed*", "smrp seed=7"));
  EXPECT_TRUE(glob_match("seed=?", "seed=7"));
  EXPECT_FALSE(glob_match("seed=?", "seed=77"));
  EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(glob_match("a*b*c", "a-x-c"));
  EXPECT_FALSE(glob_match("abc", "ab"));
}

/// A telemetry bundle with something for every rule shape to judge.
Telemetry make_bundle() {
  Telemetry t;
  const SpanId outage = t.spans.open("outage", 3, 100.0);
  const SpanId ring = t.spans.open("ring", 3, 120.0, outage);
  t.spans.attr(ring, "ttl", 8.0);
  t.spans.attr(ring, "ttl_cap", 4.0);  // over budget: one violation
  t.spans.close(ring, 140.0, SpanStatus::kFailed);
  t.spans.close(outage, 200.0, SpanStatus::kOk);  // ok but no repair child
  (void)t.spans.open("outage", 5, 300.0);  // left open: truncated at export

  t.events.record("forward", 3, 110.0, {{"seq", 1.0}, {"on_tree", 1.0}});
  t.events.record("forward", 4, 115.0, {{"seq", 1.0}, {"on_tree", 0.0}});
  t.events.record("deliver", 3, 118.0, {{"seq", 1.0}});
  t.events.record("deliver", 3, 119.0, {{"seq", 1.0}});  // duplicate
  t.events.record("restart", 6, 150.0, {{"member", 1.0}});  // never rejoins
  return t;
}

RuleSet bundle_rules() {
  RuleSet rules;
  rules.require_status("outage-resolves", "outage", {"ok", "superseded"})
      .require_child("outage-has-recovery", "outage", 1, {"repair"})
      .require_attr_le("ring-within-budget", "ring", "ttl", "ttl_cap")
      .require_flag("forward-on-tree", "forward", "on_tree")
      .require_monotone("no-duplicate-delivery", "deliver", "seq")
      .require_follows("restart-rejoins", "restart", "deliver", "member");
  return rules;
}

TEST(ExpectOffline, ReplayOfOwnExportIsByteIdenticalToOnline) {
  Telemetry telemetry = make_bundle();

  // Online: tap a fresh checker with the same stream the bundle recorded.
  // (Replaying through the collector's own structures keeps this purely
  // a checker/exporter test; the full-simulation version lives in
  // tests/smrp/test_expectations.cpp.)
  ExpectationChecker online(bundle_rules());
  for (const Span& span : telemetry.spans.spans()) {
    if (span.open()) continue;
    online.on_span_closed(span);
  }
  // The exporter truncates still-open spans at the snapshot time.
  for (const Span& span : telemetry.spans.spans()) {
    if (!span.open()) continue;
    Span cut = span;
    cut.end = 1'000.0;
    cut.status = SpanStatus::kTruncated;
    online.on_span_closed(cut);
  }
  for (const Event& event : telemetry.events.events()) {
    online.on_event(event);
  }

  std::ostringstream jsonl;
  JsonlSink sink(jsonl);
  sink.write_snapshot(telemetry, 1'000.0, "bundle");

  std::istringstream replay(jsonl.str());
  const OfflineResult offline = check_stream(replay, bundle_rules());
  ASSERT_EQ(offline.runs.size(), 1u);
  EXPECT_EQ(offline.runs[0].run, "bundle");
  EXPECT_EQ(offline.runs[0].report.render(), online.report().render());

  // And the stream really exercised every rule: one violation each.
  EXPECT_EQ(offline.total_violations(), 6u);
  for (const RuleOutcome& rule : offline.runs[0].report.rules) {
    EXPECT_EQ(rule.violations, 1u) << rule.name;
    EXPECT_GT(rule.checked, 0u) << rule.name;
  }
}

TEST(ExpectOffline, FiltersSectionsByRunLabelGlob) {
  Telemetry clean;
  const SpanId span = clean.spans.open("outage", 1, 10.0);
  clean.spans.close(span, 20.0, SpanStatus::kOk);
  Telemetry dirty;
  const SpanId bad = dirty.spans.open("outage", 1, 10.0);
  dirty.spans.close(bad, 20.0, SpanStatus::kFailed);

  std::ostringstream jsonl;
  JsonlSink sink(jsonl);
  sink.write_snapshot(clean, 100.0, "smrp seed=7");
  sink.write_snapshot(dirty, 100.0, "pim seed=7");

  RuleSet rules;
  rules.require_status("outage-resolves", "outage", {"ok"});

  std::istringstream all(jsonl.str());
  const OfflineResult both = check_stream(all, rules);
  ASSERT_EQ(both.runs.size(), 2u);
  EXPECT_FALSE(both.ok());

  std::istringstream smrp_only(jsonl.str());
  const OfflineResult filtered = check_stream(smrp_only, rules, "smrp*");
  ASSERT_EQ(filtered.runs.size(), 1u);
  EXPECT_EQ(filtered.runs[0].run, "smrp seed=7");
  EXPECT_TRUE(filtered.ok());
}

TEST(ExpectOffline, RejectsMalformedInputWithLineNumbers) {
  RuleSet rules;
  rules.require_status("a", "outage", {"ok"});

  const auto expect_error = [&](const std::string& text,
                                const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)check_stream(in, rules);
      FAIL() << "expected a parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  expect_error(
      R"({"type":"span","id":1,"parent":0,"kind":"outage","node":1,)"
      R"("start":0,"end":1,"status":"ok"})"
      "\n",
      "line 1");
  expect_error("{\"type\":\"meta\",\"version\":1,\"run\":\"r\"}\nnot json\n",
               "line 2");
}

TEST(ExpectOffline, CheckFileThrowsOnMissingFile) {
  RuleSet rules;
  rules.require_status("a", "outage", {"ok"});
  EXPECT_THROW((void)check_file("/no/such/trace.jsonl", rules),
               std::runtime_error);
}

}  // namespace
}  // namespace smrp::obs::expect
