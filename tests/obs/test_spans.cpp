// SpanCollector discipline (the contract the protocol instrumentation and
// the chaos nesting test lean on) and the JSONL wire format, line by line.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace smrp::obs {
namespace {

TEST(SpanCollector, IdsAreDenseFromOne) {
  SpanCollector c;
  EXPECT_EQ(c.open("outage", 6, 100.0), 1u);
  EXPECT_EQ(c.open("repair", 6, 101.0, 1), 2u);
  EXPECT_EQ(c.open("ring", 6, 101.0, 2), 3u);
  EXPECT_EQ(c.spans().size(), 3u);
  EXPECT_EQ(c.open_count(), 3u);
}

TEST(SpanCollector, CloseRecordsEndAndStatus) {
  SpanCollector c;
  const SpanId id = c.open("ring", 3, 50.0);
  c.close(id, 75.0, SpanStatus::kFailed);
  const Span* s = c.find(id);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->open());
  EXPECT_DOUBLE_EQ(s->end, 75.0);
  EXPECT_DOUBLE_EQ(s->duration(), 25.0);
  EXPECT_EQ(s->status, SpanStatus::kFailed);
  EXPECT_EQ(c.open_count(), 0u);
}

TEST(SpanCollector, AttrsOverwriteByKeyAndLookUpByName) {
  SpanCollector c;
  const SpanId id = c.open("repair", 9, 0.0);
  c.attr(id, "ttl_start", 1.0);
  c.attr(id, "rings", 2.0);
  c.attr(id, "rings", 3.0);  // overwrite, not append
  const Span* s = c.find(id);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->attrs.size(), 2u);
  const double* rings = s->attr("rings");
  ASSERT_NE(rings, nullptr);
  EXPECT_DOUBLE_EQ(*rings, 3.0);
  EXPECT_EQ(s->attr("no_such_key"), nullptr);
}

TEST(SpanCollector, DoubleClosesAreCountedNotApplied) {
  SpanCollector c;
  const SpanId id = c.open("graft", 4, 10.0);
  c.close(id, 20.0, SpanStatus::kOk);
  c.close(id, 30.0, SpanStatus::kFailed);  // must not rewrite the span
  EXPECT_EQ(c.double_closes(), 1u);
  const Span* s = c.find(id);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->end, 20.0);
  EXPECT_EQ(s->status, SpanStatus::kOk);
}

TEST(SpanCollector, ClosingNoSpanOrUnknownIdIsSilentlyIgnored) {
  SpanCollector c;
  c.close(kNoSpan, 5.0);
  c.close(999, 5.0);
  EXPECT_EQ(c.double_closes(), 0u);
  EXPECT_TRUE(c.spans().empty());
}

TEST(SpanCollector, CloseOpenFlushesEverythingAsTruncated) {
  SpanCollector c;
  const SpanId a = c.open("outage", 1, 0.0);
  const SpanId b = c.open("repair", 1, 1.0, a);
  c.close(b, 2.0, SpanStatus::kOk);
  c.close_open(10.0);
  EXPECT_EQ(c.open_count(), 0u);
  EXPECT_EQ(c.find(a)->status, SpanStatus::kTruncated);
  EXPECT_DOUBLE_EQ(c.find(a)->end, 10.0);
  // Already-closed spans are untouched and not counted as double closes.
  EXPECT_EQ(c.find(b)->status, SpanStatus::kOk);
  EXPECT_EQ(c.double_closes(), 0u);
}

TEST(SpanCollector, CountsByKind) {
  SpanCollector c;
  c.open("ring", 2, 0.0);
  c.open("ring", 2, 1.0);
  c.open("repair", 2, 0.0);
  EXPECT_EQ(c.count("ring"), 2u);
  EXPECT_EQ(c.count("repair"), 1u);
  EXPECT_EQ(c.count("outage"), 0u);
}

TEST(SpanStatusName, CoversEveryStatus) {
  EXPECT_EQ(span_status_name(SpanStatus::kOpen), "open");
  EXPECT_EQ(span_status_name(SpanStatus::kOk), "ok");
  EXPECT_EQ(span_status_name(SpanStatus::kFailed), "failed");
  EXPECT_EQ(span_status_name(SpanStatus::kSuperseded), "superseded");
  EXPECT_EQ(span_status_name(SpanStatus::kTruncated), "truncated");
}

std::vector<std::string> snapshot_lines(const Telemetry& telemetry,
                                        double now,
                                        std::string_view label = "run") {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write_snapshot(telemetry, now, label);
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(JsonlSink, MetaLineLeadsEverySnapshot) {
  Telemetry t;
  t.spans.open("outage", 6, 100.0);
  t.metrics.counter("smrp.sim.events").add(12);
  const std::vector<std::string> lines = snapshot_lines(t, 250.0, "drill");
  ASSERT_EQ(lines.size(), 3u);  // meta + 1 span + 1 counter
  EXPECT_EQ(lines[0],
            "{\"type\":\"meta\",\"version\":1,\"run\":\"drill\",\"at\":250,"
            "\"spans\":1,\"open_spans\":1,\"events\":0,\"samples\":0}");
}

TEST(JsonlSink, SpanLineFlattensAttrsAndSnapshotsOpenEnds) {
  Telemetry t;
  const SpanId id = t.spans.open("repair", 6, 100.5);
  t.spans.attr(id, "ttl_start", 1.0);
  const std::vector<std::string> lines = snapshot_lines(t, 200.0);
  ASSERT_GE(lines.size(), 2u);
  // An open span is exported with the snapshot time as its end and the
  // `truncated` status — the same judgement Telemetry::finish applies —
  // so every line has a well-formed, judgeable [start, end] interval.
  EXPECT_EQ(lines[1],
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"kind\":\"repair\","
            "\"node\":6,\"start\":100.5,\"end\":200,\"status\":\"truncated\","
            "\"ttl_start\":1}");
}

TEST(JsonlSink, MetricLinesAreTypedAndNameOrdered) {
  Telemetry t;
  t.metrics.counter("smrp.sim.tx.DATA").add(7);
  t.metrics.gauge("smrp.sim.queue_depth").set(3.0);
  t.metrics.histogram("smrp.proto.outage_ms").record(125.0);
  const std::vector<std::string> lines = snapshot_lines(t, 0.0);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[1],
            "{\"type\":\"counter\",\"name\":\"smrp.sim.tx.DATA\",\"value\":7}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"gauge\",\"name\":\"smrp.sim.queue_depth\","
            "\"value\":3,\"max\":3}");
  EXPECT_EQ(lines[3].rfind("{\"type\":\"hist\",\"name\":\"smrp.proto."
                           "outage_ms\",\"count\":1,\"sum\":125,",
                           0),
            0u)
      << lines[3];
}

TEST(JsonlSink, EscapesControlAndQuoteCharacters) {
  Telemetry t;
  t.spans.open("odd\"kind\\with\nnewline", 1, 0.0);
  const std::vector<std::string> lines = snapshot_lines(t, 1.0);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"odd\\\"kind\\\\with\\nnewline\""),
            std::string::npos)
      << lines[1];
}

TEST(JsonlSink, ReExportOfTheSameStateDiffsBitForBit) {
  Telemetry t;
  const SpanId outage = t.spans.open("outage", 6, 100.0);
  const SpanId repair = t.spans.open("repair", 6, 150.0, outage);
  t.spans.attr(repair, "rings", 2.0);
  t.spans.close(repair, 460.125, SpanStatus::kOk);
  t.spans.close(outage, 512.0078125, SpanStatus::kOk);
  t.metrics.histogram("smrp.proto.outage_ms").record(412.0078125);
  std::ostringstream a, b;
  JsonlSink(a).write_snapshot(t, 1000.0, "run");
  JsonlSink(b).write_snapshot(t, 1000.0, "run");
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace smrp::obs
