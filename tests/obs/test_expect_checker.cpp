// Incremental evaluator: one test per predicate shape, fed through a real
// Telemetry bundle (the same SpanCollector / EventLog taps the simulation
// drives), plus the report-shape guarantees the online/offline identity
// rests on: order-independent first violations, repeatable report(), and
// truncated-span flagging via Telemetry::finish().
#include "obs/expect/checker.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/expect/rules.hpp"

namespace smrp::obs::expect {
namespace {

RuleSet status_rule() {
  RuleSet set;
  set.require_status("outage-resolves", "outage", {"ok", "superseded"});
  return set;
}

TEST(ExpectChecker, StatusRuleFlagsDisallowedStatuses) {
  ExpectationChecker checker(status_rule());
  Telemetry telemetry;
  checker.attach(telemetry);

  const SpanId ok = telemetry.spans.open("outage", 3, 100.0);
  telemetry.spans.close(ok, 200.0, SpanStatus::kOk);
  const SpanId failed = telemetry.spans.open("outage", 4, 150.0);
  telemetry.spans.close(failed, 300.0, SpanStatus::kFailed);
  const SpanId other = telemetry.spans.open("repair", 4, 150.0);
  telemetry.spans.close(other, 310.0, SpanStatus::kFailed);  // not an outage

  const ExpectReport report = checker.report();
  ASSERT_EQ(report.rules.size(), 1u);
  EXPECT_EQ(report.rules[0].checked, 2u);
  EXPECT_EQ(report.rules[0].violations, 1u);
  ASSERT_TRUE(report.rules[0].first.has_value());
  EXPECT_EQ(report.rules[0].first->ref, failed);
  EXPECT_EQ(report.rules[0].first->node, 4);
  EXPECT_EQ(report.rules[0].first->detail, "status=failed");
  EXPECT_FALSE(report.ok());
}

TEST(ExpectChecker, FinishFlushesOpenSpansAsTruncatedViolations) {
  ExpectationChecker checker(status_rule());
  Telemetry telemetry;
  checker.attach(telemetry);

  (void)telemetry.spans.open("outage", 7, 500.0);  // never closed
  EXPECT_TRUE(checker.report().ok()) << "open spans are not judged yet";
  telemetry.finish(2'000.0);

  const ExpectReport report = checker.report();
  EXPECT_EQ(report.rules[0].violations, 1u);
  ASSERT_TRUE(report.rules[0].first.has_value());
  EXPECT_EQ(report.rules[0].first->detail, "status=truncated");
  EXPECT_DOUBLE_EQ(report.rules[0].first->at, 2'000.0);
}

TEST(ExpectChecker, AttrLeChecksLiteralAndAttributeCaps) {
  RuleSet rules;
  rules.require_attr_le("budget", "ring", "ttl", "ttl_cap")
      .require_attr_le("lit", "ring", "ttl", 2.0);
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);

  const SpanId fine = telemetry.spans.open("ring", 1, 10.0);
  telemetry.spans.attr(fine, "ttl", 2.0);
  telemetry.spans.attr(fine, "ttl_cap", 4.0);
  telemetry.spans.close(fine, 20.0);

  const SpanId over = telemetry.spans.open("ring", 2, 30.0);
  telemetry.spans.attr(over, "ttl", 8.0);
  telemetry.spans.attr(over, "ttl_cap", 4.0);
  telemetry.spans.close(over, 40.0);

  const SpanId missing = telemetry.spans.open("ring", 3, 50.0);
  telemetry.spans.close(missing, 60.0);  // no attrs at all

  const ExpectReport report = checker.report();
  const RuleOutcome& budget = report.rules[0];
  EXPECT_EQ(budget.checked, 3u);
  EXPECT_EQ(budget.violations, 2u);  // over-cap + missing attr
  ASSERT_TRUE(budget.first.has_value());
  EXPECT_EQ(budget.first->detail, "ttl=8 exceeds ttl_cap=4");
  const RuleOutcome& lit = report.rules[1];
  EXPECT_EQ(lit.violations, 2u);  // ttl=8 > 2, plus the missing attr
  EXPECT_EQ(lit.first->detail, "ttl=8 exceeds cap=2");
}

TEST(ExpectChecker, ChildRuleIsOrderIndependentAndBindsOkParentsOnly) {
  RuleSet rules;
  rules.require_child("recovery", "outage", 1, {"repair", "graft"});
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);

  // Parent closes BEFORE its child: the judgement must wait for report().
  const SpanId healed = telemetry.spans.open("outage", 1, 100.0);
  const SpanId repair = telemetry.spans.open("repair", 1, 110.0, healed);
  telemetry.spans.close(healed, 200.0, SpanStatus::kOk);
  telemetry.spans.close(repair, 210.0, SpanStatus::kOk);

  // Ok-closed with no matching child: the one violation.
  const SpanId bare = telemetry.spans.open("outage", 2, 300.0);
  const SpanId noise = telemetry.spans.open("rejoin", 2, 310.0, bare);
  telemetry.spans.close(noise, 320.0, SpanStatus::kOk);  // not a listed kind
  telemetry.spans.close(bare, 400.0, SpanStatus::kOk);

  // Superseded parents are exempt (the episode was mooted, not healed).
  const SpanId mooted = telemetry.spans.open("outage", 3, 500.0);
  telemetry.spans.close(mooted, 600.0, SpanStatus::kSuperseded);

  const ExpectReport report = checker.report();
  const RuleOutcome& outcome = report.rules[0];
  EXPECT_EQ(outcome.checked, 2u);  // the two ok-closed outages
  EXPECT_EQ(outcome.violations, 1u);
  ASSERT_TRUE(outcome.first.has_value());
  EXPECT_EQ(outcome.first->ref, bare);
  EXPECT_EQ(outcome.first->detail, "has 0 matching children, needs 1");
}

TEST(ExpectChecker, FlagRuleRequiresPresentNonzeroAttr) {
  RuleSet rules;
  rules.require_flag("on-tree", "forward", "on_tree");
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);

  telemetry.events.record("forward", 1, 10.0, {{"on_tree", 1.0}});
  telemetry.events.record("forward", 2, 20.0, {{"on_tree", 0.0}});
  telemetry.events.record("forward", 3, 30.0, {});
  telemetry.events.record("deliver", 4, 40.0, {});  // different kind

  const ExpectReport report = checker.report();
  const RuleOutcome& outcome = report.rules[0];
  EXPECT_EQ(outcome.checked, 3u);
  EXPECT_EQ(outcome.violations, 2u);
  ASSERT_TRUE(outcome.first.has_value());
  EXPECT_TRUE(outcome.first->is_event);
  EXPECT_EQ(outcome.first->ref, 2u);  // 1-based stream index
  EXPECT_EQ(outcome.first->detail, "on_tree=0");
}

TEST(ExpectChecker, MonotoneRuleIsStrictAndPerNode) {
  RuleSet rules;
  rules.require_monotone("no-dup", "deliver", "seq");
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);

  telemetry.events.record("deliver", 1, 10.0, {{"seq", 5.0}});
  telemetry.events.record("deliver", 2, 11.0, {{"seq", 5.0}});  // other node ok
  telemetry.events.record("deliver", 1, 12.0, {{"seq", 6.0}});
  telemetry.events.record("deliver", 1, 13.0, {{"seq", 6.0}});  // duplicate
  telemetry.events.record("deliver", 2, 14.0, {{"seq", 4.0}});  // regression

  const ExpectReport report = checker.report();
  const RuleOutcome& outcome = report.rules[0];
  EXPECT_EQ(outcome.checked, 5u);
  EXPECT_EQ(outcome.violations, 2u);
  ASSERT_TRUE(outcome.first.has_value());
  EXPECT_EQ(outcome.first->node, 1);
  EXPECT_EQ(outcome.first->detail, "seq=6 does not exceed previous 6");
}

TEST(ExpectChecker, FollowsRuleGatesSubjectsAndCatchesUnanswered) {
  RuleSet rules;
  rules.require_follows("rejoins", "restart", "deliver", "member");
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);

  // Non-member restart: the gate excludes it entirely.
  telemetry.events.record("restart", 1, 10.0, {{"member", 0.0}});
  // Member restart answered by a later deliver at the same node.
  telemetry.events.record("restart", 2, 20.0, {{"member", 1.0}});
  telemetry.events.record("deliver", 2, 30.0, {{"seq", 1.0}});
  // Member restart never answered (a deliver elsewhere does not count).
  telemetry.events.record("restart", 3, 40.0, {{"member", 1.0}});
  telemetry.events.record("deliver", 4, 50.0, {{"seq", 2.0}});

  const ExpectReport report = checker.report();
  const RuleOutcome& outcome = report.rules[0];
  EXPECT_EQ(outcome.checked, 2u);  // the two member restarts
  EXPECT_EQ(outcome.violations, 1u);
  ASSERT_TRUE(outcome.first.has_value());
  EXPECT_EQ(outcome.first->node, 3);
  EXPECT_EQ(outcome.first->detail, "no deliver before end of run");
  // The violation anchors at the unanswered restart, not end-of-stream.
  EXPECT_DOUBLE_EQ(outcome.first->at, 40.0);
}

TEST(ExpectChecker, FirstViolationIsEarliestByTimeNotArrival) {
  ExpectationChecker checker(status_rule());
  Telemetry telemetry;
  checker.attach(telemetry);

  // The later-closing span violates first in arrival order, but the span
  // that ends earlier in sim time must win the "first violation" slot —
  // that is what makes online and offline replays agree.
  const SpanId late = telemetry.spans.open("outage", 1, 100.0);
  const SpanId early = telemetry.spans.open("outage", 2, 100.0);
  telemetry.spans.close(late, 900.0, SpanStatus::kFailed);
  telemetry.spans.close(early, 400.0, SpanStatus::kFailed);

  const ExpectReport report = checker.report();
  ASSERT_TRUE(report.rules[0].first.has_value());
  EXPECT_EQ(report.rules[0].first->ref, early);
  EXPECT_DOUBLE_EQ(report.rules[0].first->at, 400.0);
}

TEST(ExpectChecker, ReportIsRepeatableAndRendersTheTable) {
  RuleSet rules;
  rules.require_status("outage-resolves", "outage", {"ok"})
      .require_flag("on-tree", "forward", "on_tree");
  ExpectationChecker checker(std::move(rules));
  Telemetry telemetry;
  checker.attach(telemetry);
  const SpanId s = telemetry.spans.open("outage", 5, 10.0);
  telemetry.spans.close(s, 20.0, SpanStatus::kFailed);
  telemetry.events.record("forward", 5, 15.0, {{"on_tree", 1.0}});

  const ExpectReport once = checker.report();
  const ExpectReport twice = checker.report();
  EXPECT_EQ(once.render(), twice.render());
  EXPECT_EQ(once.total_violations(), 1u);

  const std::string table = once.render();
  EXPECT_NE(table.find("expect: 2 rules, 1 violations"), std::string::npos);
  EXPECT_NE(table.find("outage-resolves"), std::string::npos);
  EXPECT_NE(table.find("t=20 span 1 node 5: status=failed"),
            std::string::npos);
  // Passing rules render a dash in the first-violation column.
  EXPECT_NE(table.find("  -"), std::string::npos);
}

TEST(ExpectChecker, DetachStopsObservation) {
  ExpectationChecker checker(status_rule());
  Telemetry telemetry;
  checker.attach(telemetry);
  checker.detach(telemetry);
  const SpanId s = telemetry.spans.open("outage", 1, 10.0);
  telemetry.spans.close(s, 20.0, SpanStatus::kFailed);
  EXPECT_TRUE(checker.report().ok());
  EXPECT_EQ(checker.report().rules[0].checked, 0u);
}

}  // namespace
}  // namespace smrp::obs::expect
