#include "hier/hierarchical.hpp"

#include <gtest/gtest.h>

#include "net/rng.hpp"

namespace smrp::hier {
namespace {

net::TransitStubTopology make_topology(std::uint64_t seed = 7) {
  net::Rng rng(seed);
  net::TransitStubParams p;
  p.transit_nodes = 4;
  p.stubs_per_transit = 2;
  p.stub_size = 4;
  return net::generate_transit_stub(p, rng);
}

/// A receiver inside some stub domain other than `not_in`, plus its domain.
std::pair<net::NodeId, DomainId> pick_member(
    const net::TransitStubTopology& topo, DomainId not_in, int skip = 0) {
  for (DomainId d = 1; d < topo.domain_count(); ++d) {
    if (d == not_in) continue;
    if (skip-- > 0) continue;
    // Any non-agent node of the domain.
    return {topo.nodes_of_domain[static_cast<std::size_t>(d)].back(), d};
  }
  throw std::logic_error("no domain available");
}

TEST(HierarchicalSession, TransitSourceServesStubMembers) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, /*source=*/0);  // transit node
  const auto [m1, d1] = pick_member(topo, net::kTransitDomain, 0);
  const auto [m2, d2] = pick_member(topo, net::kTransitDomain, 3);
  session.join(m1);
  session.join(m2);
  EXPECT_TRUE(session.is_member(m1));
  EXPECT_TRUE(session.is_member(m2));
  EXPECT_EQ(session.member_count(), 2);
  EXPECT_GT(session.delay_to_source(m1), 0.0);
  EXPECT_GT(session.delay_to_source(m2), 0.0);
  EXPECT_GT(session.total_cost(), 0.0);
  // The level-2 tree pulled in both domains' agents.
  EXPECT_EQ(session.transit_tree().tree().member_count(), 2);
  session.transit_tree().tree().validate();
}

TEST(HierarchicalSession, StubSourceUsesAgentRelay) {
  const auto topo = make_topology();
  // Source inside stub domain 1 (a non-agent node).
  const net::NodeId source = topo.nodes_of_domain[1].back();
  HierarchicalSession session(topo, source);
  const auto [member, d] = pick_member(topo, 1);
  session.join(member);
  EXPECT_GT(session.delay_to_source(member), 0.0);
  // Intra-domain member of the source's own domain: delay uses that tree
  // directly.
  const auto& dom1 = topo.nodes_of_domain[1];
  for (const net::NodeId n : dom1) {
    if (n == source || n == dom1.front()) continue;
    session.join(n);
    EXPECT_GT(session.delay_to_source(n), 0.0);
    break;
  }
}

TEST(HierarchicalSession, MembersInSameDomainShareOneInstance) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  const auto& dom2 = topo.nodes_of_domain[2];
  // Two non-agent receivers in domain 2.
  session.join(dom2[1]);
  session.join(dom2[2]);
  const auto* tree = session.domain_tree(2);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->tree().member_count(), 2);
  // Only one agent entered the level-2 tree.
  EXPECT_EQ(session.transit_tree().tree().member_count(), 1);
}

TEST(HierarchicalSession, DomainOfLinkOwnership) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  for (net::LinkId l = 0; l < topo.graph.link_count(); ++l) {
    const net::Link& link = topo.graph.link(l);
    const DomainId da = topo.domain_of_node[static_cast<std::size_t>(link.a)];
    const DomainId db = topo.domain_of_node[static_cast<std::size_t>(link.b)];
    const DomainId owner = session.domain_of_link(l);
    if (da == db) {
      EXPECT_EQ(owner, da);
    } else {
      EXPECT_EQ(owner, net::kTransitDomain);
    }
  }
}

TEST(HierarchicalSession, IntraStubFailureIsConfined) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  // Fill several domains with receivers.
  for (DomainId d = 1; d <= 4; ++d) {
    const auto& nodes = topo.nodes_of_domain[static_cast<std::size_t>(d)];
    for (std::size_t i = 1; i < nodes.size(); ++i) session.join(nodes[i]);
  }
  const int total = session.member_count();
  ASSERT_GT(total, 6);

  // Fail a tree link inside domain 1.
  const auto* dom = session.domain_tree(1);
  ASSERT_NE(dom, nullptr);
  // Find the worst-case link for some member of domain 1 (local ids).
  const auto members = dom->tree().members();
  ASSERT_FALSE(members.empty());
  const net::LinkId local_failed =
      proto::worst_case_failure_link(dom->tree(), members.front());
  const net::LinkId global_failed =
      session.domain_view(1)->link_to_global(local_failed);

  const HierRecoveryOutcome out = session.recover(global_failed);
  EXPECT_EQ(out.domain, 1);
  if (out.link_on_tree) {
    // Every other domain's receivers kept their service.
    EXPECT_GE(out.unaffected_members, total - static_cast<int>(
        topo.nodes_of_domain[1].size()));
    EXPECT_GT(out.disconnected_members, 0);
  }
}

TEST(HierarchicalSession, TransitFailureRepairsAtLevelTwo) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  for (DomainId d = 1; d <= 3; ++d) {
    const auto& nodes = topo.nodes_of_domain[static_cast<std::size_t>(d)];
    session.join(nodes.back());
  }
  // Fail every transit-owned link in turn; recovery must never touch a
  // stub instance and must report a consistent confinement count.
  for (net::LinkId l = 0; l < topo.graph.link_count(); ++l) {
    if (session.domain_of_link(l) != net::kTransitDomain) continue;
    const HierRecoveryOutcome out = session.recover(l);
    EXPECT_EQ(out.domain, net::kTransitDomain);
    EXPECT_EQ(out.disconnected_members + out.unaffected_members,
              session.member_count());
  }
}

TEST(HierarchicalSession, NonTreeFailureLeavesEveryoneUnaffected) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  const auto [m, d] = pick_member(topo, net::kTransitDomain);
  session.join(m);
  // A link inside a domain with no session state.
  net::LinkId idle_link = net::kNoLink;
  for (net::LinkId l = 0; l < topo.graph.link_count(); ++l) {
    const DomainId owner = session.domain_of_link(l);
    if (owner != net::kTransitDomain && owner != d &&
        session.domain_tree(owner) == nullptr) {
      idle_link = l;
      break;
    }
  }
  ASSERT_NE(idle_link, net::kNoLink);
  const HierRecoveryOutcome out = session.recover(idle_link);
  EXPECT_FALSE(out.link_on_tree);
  EXPECT_EQ(out.unaffected_members, 1);
}

TEST(HierarchicalSession, RejectsBadJoins) {
  const auto topo = make_topology();
  HierarchicalSession session(topo, 0);
  EXPECT_THROW(session.join(0), std::invalid_argument);  // the source
  // A stub agent cannot be a receiver (it is the domain root).
  EXPECT_THROW(session.join(topo.nodes_of_domain[1].front()),
               std::invalid_argument);
}

}  // namespace
}  // namespace smrp::hier
