// Shard-plan edge cases (DESIGN.md §15): the generic LPT builder in
// sim::build_shard_plan and the transit-stub wiring in
// hier::make_shard_plan. The hard cases a real topology rarely shows —
// single-domain graphs, a node whose every link crosses domains, empty
// stub domains — must degrade to sane plans, not corrupt ones.
#include "hier/shard_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/rng.hpp"
#include "net/transit_stub.hpp"
#include "sim/network.hpp"
#include "sim/sharded.hpp"

namespace smrp::hier {
namespace {

using sim::ShardPlan;
using sim::build_shard_plan;

net::TransitStubTopology make_topology(std::uint64_t seed = 7) {
  net::Rng rng(seed);
  net::TransitStubParams p;
  p.transit_nodes = 4;
  p.stubs_per_transit = 2;
  p.stub_size = 4;
  return net::generate_transit_stub(p, rng);
}

std::vector<int> shard_loads(const ShardPlan& plan) {
  std::vector<int> load(static_cast<std::size_t>(plan.shards), 0);
  for (const int s : plan.shard_of) ++load[static_cast<std::size_t>(s)];
  return load;
}

TEST(BuildShardPlan, TrivialInputsCollapseToOneShard) {
  EXPECT_EQ(build_shard_plan({}, 4).shards, 1);
  EXPECT_TRUE(build_shard_plan({}, 4).shard_of.empty());

  const ShardPlan one = build_shard_plan({0, 1, 2, 1}, 1);
  EXPECT_EQ(one.shards, 1);
  EXPECT_EQ(one.shard_of, std::vector<int>({0, 0, 0, 0}));

  const ShardPlan zero = build_shard_plan({0, 1}, 0);
  EXPECT_EQ(zero.shards, 1);
}

TEST(BuildShardPlan, NegativeGroupThrows) {
  EXPECT_THROW(build_shard_plan({0, -1, 2}, 2), std::invalid_argument);
}

TEST(BuildShardPlan, SingleGroupTopologyClampsToOneShard) {
  // Every node in group 0: asking for 8 shards must not create 7 empty
  // wheels (windows over empty shards are pure overhead).
  const ShardPlan plan = build_shard_plan(std::vector<int>(16, 0), 8);
  EXPECT_EQ(plan.shards, 1);
  EXPECT_TRUE(std::all_of(plan.shard_of.begin(), plan.shard_of.end(),
                          [](int s) { return s == 0; }));
}

TEST(BuildShardPlan, ClampsToPopulatedGroupsSkippingGaps) {
  // Groups 0, 3, 7 populated; 1, 2, 4, 5, 6 are empty gaps (the shape an
  // empty stub domain produces). Plan must use exactly 3 shards.
  const std::vector<int> groups = {0, 0, 3, 3, 3, 7, 7};
  const ShardPlan plan = build_shard_plan(groups, 16);
  EXPECT_EQ(plan.shards, 3);
  // Group 0 pinned to shard 0 (the control shard).
  EXPECT_EQ(plan.shard_of[0], 0);
  EXPECT_EQ(plan.shard_of[1], 0);
  // Same group, same shard; distinct groups on distinct shards here
  // (3 groups, 3 shards).
  EXPECT_EQ(plan.shard_of[2], plan.shard_of[3]);
  EXPECT_EQ(plan.shard_of[3], plan.shard_of[4]);
  EXPECT_EQ(plan.shard_of[5], plan.shard_of[6]);
  EXPECT_NE(plan.shard_of[2], 0);
  EXPECT_NE(plan.shard_of[5], 0);
  EXPECT_NE(plan.shard_of[2], plan.shard_of[5]);
}

TEST(BuildShardPlan, LptBalancesLoadDeterministically) {
  // Group 0 size 2 (pinned), then sizes 6, 5, 4, 3 over 2 shards:
  // LPT puts 6 on the emptier shard, then 5, 4, 3 greedily. Loads end
  // within one group of each other and two identical calls agree exactly.
  std::vector<int> groups(2, 0);
  groups.insert(groups.end(), 6, 1);
  groups.insert(groups.end(), 5, 2);
  groups.insert(groups.end(), 4, 3);
  groups.insert(groups.end(), 3, 4);
  const ShardPlan a = build_shard_plan(groups, 2);
  const ShardPlan b = build_shard_plan(groups, 2);
  EXPECT_EQ(a.shard_of, b.shard_of);
  ASSERT_EQ(a.shards, 2);
  const auto load = shard_loads(a);
  EXPECT_EQ(load[0] + load[1], static_cast<int>(groups.size()));
  EXPECT_LE(std::abs(load[0] - load[1]), 4);
  // Groups never split across shards.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      if (groups[i] == groups[j]) {
        EXPECT_EQ(a.shard_of[i], a.shard_of[j]);
      }
    }
  }
}

TEST(MakeShardPlan, TransitCorePinsToControlShard) {
  const auto topo = make_topology();
  const ShardPlan plan = make_shard_plan(topo, 4);
  EXPECT_EQ(plan.shards, 4);
  ASSERT_EQ(plan.shard_of.size(),
            static_cast<std::size_t>(topo.graph.node_count()));
  for (const net::NodeId n : topo.nodes_of_domain[net::kTransitDomain]) {
    EXPECT_EQ(plan.shard_of[static_cast<std::size_t>(n)], 0)
        << "transit node " << n << " left the control shard";
  }
  // Every stub domain lands whole on one shard.
  for (net::DomainId d = 1; d < topo.domain_count(); ++d) {
    const auto& nodes = topo.nodes_of_domain[static_cast<std::size_t>(d)];
    for (const net::NodeId n : nodes) {
      EXPECT_EQ(plan.shard_of[static_cast<std::size_t>(n)],
                plan.shard_of[static_cast<std::size_t>(nodes.front())]);
    }
  }
}

TEST(MakeShardPlan, MismatchedDomainMapThrows) {
  auto topo = make_topology();
  topo.domain_of_node.pop_back();
  EXPECT_THROW(make_shard_plan(topo, 2), std::invalid_argument);
}

TEST(MakeShardPlan, EmptyStubDomainsAreSkipped) {
  // Fabricate a topology whose domain list has an empty entry (a stub
  // whose nodes were all reassigned): the plan clamps to populated
  // domains and stays dense.
  net::TransitStubTopology topo;
  topo.graph = net::Graph(5);
  topo.graph.add_link(0, 1, 1.0);
  topo.graph.add_link(0, 3, 1.0);
  topo.graph.add_link(1, 2, 1.0);
  topo.graph.add_link(3, 4, 1.0);
  topo.domain_of_node = {0, 1, 1, 3, 3};  // domain 2 exists but is empty
  topo.gateway_of_domain = {net::kNoNode, 0, net::kNoNode, 0};
  topo.nodes_of_domain = {{0}, {1, 2}, {}, {3, 4}};

  const ShardPlan plan = make_shard_plan(topo, 8);
  EXPECT_EQ(plan.shards, 3);  // transit + two populated stubs
  for (const int s : plan.shard_of) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, plan.shards);
  }
}

TEST(MakeShardPlan, PureBoundaryNodeStillDelivers) {
  // A star: the hub is a transit node whose every link crosses a shard
  // boundary (no intra-shard neighbor at all). Relaying through it must
  // work — each hop is a cross-shard enqueue both ways.
  net::TransitStubTopology topo;
  topo.graph = net::Graph(4);
  topo.graph.add_link(0, 1, 2.0);
  topo.graph.add_link(0, 2, 2.0);
  topo.graph.add_link(0, 3, 2.0);
  topo.domain_of_node = {0, 1, 2, 3};
  topo.gateway_of_domain = {net::kNoNode, 0, 0, 0};
  topo.nodes_of_domain = {{0}, {1}, {2}, {3}};

  const ShardPlan plan = make_shard_plan(topo, 4);
  ASSERT_EQ(plan.shards, 4);
  sim::ShardedSimNetwork net(topo.graph, plan);
  ASSERT_GT(net.lookahead(), 0.0);

  int hub_got = 0;
  int leaves_got = 0;
  net.set_handler(0, [&](net::NodeId from, const sim::Message& m) {
    if (!std::holds_alternative<sim::DataMsg>(m)) return;
    ++hub_got;
    // Bounce to the next leaf round-robin.
    const net::NodeId next = 1 + (from % 3);
    if (hub_got <= 9) net.send(0, next, sim::DataMsg{std::get<sim::DataMsg>(m).seq + 1});
  });
  for (net::NodeId leaf = 1; leaf <= 3; ++leaf) {
    net.set_handler(leaf, [&, leaf](net::NodeId, const sim::Message& m) {
      if (!std::holds_alternative<sim::DataMsg>(m)) return;
      ++leaves_got;
      net.send(leaf, 0, m);
    });
  }
  ASSERT_TRUE(net.send(1, 0, sim::DataMsg{1}));
  net.sim().run_all();

  EXPECT_EQ(hub_got, 10);
  EXPECT_EQ(leaves_got, 9);
  EXPECT_EQ(net.messages_sent(), net.messages_delivered());
  EXPECT_EQ(net.cross_messages(), net.messages_sent());
}

}  // namespace
}  // namespace smrp::hier
