#include "hier/subgraph.hpp"

#include <gtest/gtest.h>

#include "testing_topologies.hpp"

namespace smrp::hier {
namespace {

TEST(SubgraphView, InducedLinksOnly) {
  const net::Graph g = testing::grid3x3();
  // Top row + middle-left: links 0-1, 1-2, 0-3 survive; 1-4, 3-4, 2-5 do not.
  SubgraphView view(g, {0, 1, 2, 3});
  EXPECT_EQ(view.graph().node_count(), 4);
  EXPECT_EQ(view.graph().link_count(), 3);
}

TEST(SubgraphView, IdRoundTrip) {
  const net::Graph g = testing::grid3x3();
  SubgraphView view(g, {4, 7, 8});
  for (net::NodeId local = 0; local < 3; ++local) {
    EXPECT_EQ(view.to_local(view.to_global(local)), local);
  }
  EXPECT_TRUE(view.contains_global(7));
  EXPECT_FALSE(view.contains_global(0));
  EXPECT_THROW(static_cast<void>(view.to_local(0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(view.to_global(9)), std::out_of_range);
}

TEST(SubgraphView, LinkMappingRoundTrip) {
  const net::Graph g = testing::grid3x3();
  SubgraphView view(g, {0, 1, 3, 4});
  const net::LinkId global01 = g.link_between(0, 1).value();
  const auto local01 = view.link_to_local(global01);
  ASSERT_TRUE(local01.has_value());
  EXPECT_EQ(view.link_to_global(*local01), global01);
  // A link leaving the view has no local image.
  EXPECT_FALSE(view.link_to_local(g.link_between(1, 2).value()).has_value());
}

TEST(SubgraphView, WeightsPreserved) {
  const testing::Fig1Topology fig;
  SubgraphView view(fig.graph, {fig.S, fig.A, fig.D});
  const auto local = view.link_to_local(fig.AD);
  ASSERT_TRUE(local.has_value());
  EXPECT_DOUBLE_EQ(view.graph().link(*local).weight,
                   fig.graph.link(fig.AD).weight);
}

TEST(SubgraphView, RejectsDuplicates) {
  const net::Graph g = testing::grid3x3();
  EXPECT_THROW(SubgraphView(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW(SubgraphView(g, {0, 99}), std::out_of_range);
}

}  // namespace
}  // namespace smrp::hier
