// Differential property suite for the CSR graph layout (DESIGN.md §14).
//
// The legacy substrate stored one std::vector<Adjacency> per node, filled
// by push_back at add_link time. The CSR layout must be observationally
// identical: same neighbor enumeration order per node, same link ids, same
// SPF trees, same oracle cache behaviour. The reference model here IS the
// legacy layout (per-node vectors built by the same insertion rule), so
// any divergence is a real layout bug, not a test artifact.
#include <gtest/gtest.h>

#include <vector>

#include "net/graph.hpp"
#include "net/random_graphs.hpp"
#include "net/rng.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "net/waxman.hpp"

namespace smrp::net {
namespace {

/// The retired per-node-vector layout, rebuilt from the link list by the
/// exact legacy insertion rule (append to both endpoints in link-id order).
std::vector<std::vector<Adjacency>> legacy_adjacency(const Graph& g) {
  std::vector<std::vector<Adjacency>> adj(
      static_cast<std::size_t>(g.node_count()));
  for (LinkId id = 0; id < g.link_count(); ++id) {
    const Link& l = g.link(id);
    adj[static_cast<std::size_t>(l.a)].push_back(Adjacency{l.b, id});
    adj[static_cast<std::size_t>(l.b)].push_back(Adjacency{l.a, id});
  }
  return adj;
}

void expect_csr_matches_legacy(const Graph& g) {
  const auto legacy = legacy_adjacency(g);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const auto csr = g.neighbors(n);
    const auto& ref = legacy[static_cast<std::size_t>(n)];
    ASSERT_EQ(csr.size(), ref.size()) << "node " << n;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(csr[i].neighbor, ref[i].neighbor)
          << "node " << n << " slot " << i;
      EXPECT_EQ(csr[i].link, ref[i].link) << "node " << n << " slot " << i;
    }
    EXPECT_EQ(g.degree(n), static_cast<int>(ref.size()));
  }
}

TEST(GraphDifferential, CsrMatchesLegacyOrderOnRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    WaxmanParams wp;
    wp.node_count = 60;
    expect_csr_matches_legacy(waxman_graph(wp, rng));

    ErdosRenyiParams ep;
    ep.node_count = 50;
    expect_csr_matches_legacy(erdos_renyi_graph(ep, rng));

    BarabasiAlbertParams bp;
    bp.node_count = 80;
    bp.edges_per_node = 3;
    expect_csr_matches_legacy(barabasi_albert_graph(bp, rng));

    TransitStubParams tp;
    expect_csr_matches_legacy(generate_transit_stub(tp, rng).graph);
  }
}

TEST(GraphDifferential, CsrStaysIdenticalAcrossInterleavedMutation) {
  Rng rng(99);
  Graph g(10);
  // Interleave reads (forcing rebuilds) with further insertion batches.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 5; ++i) {
      const auto u = static_cast<NodeId>(rng.below(10));
      const auto v = static_cast<NodeId>(rng.below(10));
      if (u == v || g.link_between(u, v)) continue;
      g.add_link(u, v, 1.0 + static_cast<double>(rng.below(9)));
    }
    expect_csr_matches_legacy(g);
    if (round == 3) {
      g.add_nodes(4);  // node growth must re-anchor the offsets too
    }
  }
}

TEST(GraphDifferential, SpfBitIdenticalOnCsr) {
  // SPF consumes the graph exclusively through neighbors(); with the
  // enumeration order pinned above, trees must match a run over an
  // explicitly legacy-ordered rebuild of the same topology.
  Rng rng(7);
  WaxmanParams wp;
  wp.node_count = 80;
  const Graph g = waxman_graph(wp, rng);

  // from_links replays the same links bulk-wise: same CSR, same trees.
  const Graph bulk = Graph::from_links(
      g.node_count(), std::vector<Link>(g.links().begin(), g.links().end()));
  ASSERT_EQ(bulk.topology_version(), g.topology_version());

  for (NodeId src = 0; src < g.node_count(); src += 7) {
    const ShortestPathTree a = dijkstra(g, src);
    const ShortestPathTree b = dijkstra(bulk, src);
    EXPECT_EQ(a.dist, b.dist);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.parent_link, b.parent_link);
    EXPECT_EQ(a.hops, b.hops);
  }
}

TEST(GraphDifferential, OracleCountersUnchangedByBulkConstruction) {
  Rng rng(11);
  WaxmanParams wp;
  wp.node_count = 40;
  const Graph g = waxman_graph(wp, rng);
  const Graph bulk = Graph::from_links(
      g.node_count(), std::vector<Link>(g.links().begin(), g.links().end()));

  RoutingOracle incremental_oracle(g);
  RoutingOracle bulk_oracle(bulk);
  ExclusionSet none;
  for (int pass = 0; pass < 2; ++pass) {
    for (NodeId src = 0; src < g.node_count(); src += 5) {
      const auto a = incremental_oracle.spf(src, none);
      const auto b = bulk_oracle.spf(src, none);
      EXPECT_EQ(a->dist, b->dist);
      EXPECT_EQ(a->parent, b->parent);
    }
  }
  const auto sa = incremental_oracle.stats();
  const auto sb = bulk_oracle.stats();
  EXPECT_EQ(sa.lookups, sb.lookups);
  EXPECT_EQ(sa.cache_hits, sb.cache_hits);
  EXPECT_EQ(sa.cache_misses, sb.cache_misses);
}

TEST(GraphDifferential, FromLinksValidatesLikeAddLink) {
  const std::vector<Link> ok{{0, 1, 1.0}, {1, 2, 2.0}};
  const Graph g = Graph::from_links(3, ok);
  EXPECT_EQ(g.link_count(), 2);
  EXPECT_EQ(g.link_between(1, 0), std::optional<LinkId>{0});

  EXPECT_THROW(Graph::from_links(3, std::vector<Link>{{0, 3, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(Graph::from_links(3, std::vector<Link>{{1, 1, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_links(3, std::vector<Link>{{0, 1, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      Graph::from_links(3, std::vector<Link>{{0, 1, 1.0}, {1, 0, 2.0}}),
      std::invalid_argument);
}

// -- Satellite: duplicate-check complexity regression -----------------------
//
// The legacy add_link ran link_between — a linear adjacency scan — per
// insertion, so hub-heavy construction cost O(Σ deg²) comparisons. The
// hashed check spends exactly one probe per insertion; this is the
// operation-count (not wall-clock) regression gate for bulk construction.

TEST(GraphDuplicateCheck, OneProbePerInsertionOnHubGraphs) {
  constexpr int kSpokes = 50'000;
  Graph g(kSpokes + 1);
  for (NodeId spoke = 1; spoke <= kSpokes; ++spoke) {
    g.add_link(0, spoke, 1.0);
  }
  // Legacy would have spent ~kSpokes²/2 comparisons on the hub scan.
  EXPECT_EQ(g.duplicate_check_ops(),
            static_cast<std::uint64_t>(g.link_count()));
  EXPECT_EQ(g.degree(0), kSpokes);
}

TEST(GraphDuplicateCheck, BulkPathCountsIdentically) {
  std::vector<Link> links;
  constexpr int kSpokes = 10'000;
  links.reserve(kSpokes);
  for (NodeId spoke = 1; spoke <= kSpokes; ++spoke) {
    links.push_back(Link{0, spoke, 1.0});
  }
  const Graph g = Graph::from_links(kSpokes + 1, links);
  EXPECT_EQ(g.duplicate_check_ops(),
            static_cast<std::uint64_t>(g.link_count()));
}

// -- Satellite: reachable_count_from / connectivity contract ----------------

TEST(GraphComponents, ReachableCountReturnsTheCount) {
  Graph g(5);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  g.add_link(3, 4, 1.0);
  EXPECT_EQ(g.reachable_count_from(0), 3);
  EXPECT_EQ(g.reachable_count_from(2), 3);
  EXPECT_EQ(g.reachable_count_from(3), 2);
  const LinkId mid = g.link_between(1, 2).value();
  EXPECT_EQ(g.reachable_count_from(0, mid), 2);
  EXPECT_EQ(g.reachable_count_from(2, mid), 1);
}

TEST(GraphComponents, ReachableCountValidatesItsArguments) {
  Graph g(2);
  g.add_link(0, 1, 1.0);
  EXPECT_THROW(g.reachable_count_from(-1), std::out_of_range);
  EXPECT_THROW(g.reachable_count_from(2), std::out_of_range);
  EXPECT_THROW(g.reachable_count_from(0, 5), std::invalid_argument);
  Graph empty;
  EXPECT_THROW(empty.reachable_count_from(0), std::out_of_range);
}

TEST(GraphComponents, ComponentCountMachinery) {
  Graph g(6);
  g.add_link(0, 1, 1.0);
  g.add_link(2, 3, 1.0);
  EXPECT_EQ(g.component_count(), 4);  // {0,1} {2,3} {4} {5}
  g.add_link(1, 2, 1.0);
  g.add_link(4, 5, 1.0);
  EXPECT_EQ(g.component_count(), 2);
  const LinkId bridge = g.link_between(1, 2).value();
  EXPECT_EQ(g.component_count(bridge), 3);
  EXPECT_EQ(Graph{}.component_count(), 0);
}

TEST(GraphComponents, ConnectedHandlesDegenerateGraphs) {
  // The legacy implementation silently pivoted on node 0; the component
  // machinery has no pivot, so empty and single-node graphs are exact.
  EXPECT_TRUE(Graph{}.connected());
  EXPECT_TRUE(Graph(1).connected());
  EXPECT_FALSE(Graph(2).connected());
  EXPECT_TRUE(Graph{}.connected_without(kNoLink));
}

}  // namespace
}  // namespace smrp::net
