#include "net/random_graphs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace smrp::net {
namespace {

TEST(ErdosRenyi, ConnectedWithRequestedSize) {
  Rng rng(1);
  ErdosRenyiParams p;
  p.node_count = 80;
  const Graph g = erdos_renyi_graph(p, rng);
  EXPECT_EQ(g.node_count(), 80);
  EXPECT_TRUE(g.connected());
}

TEST(ErdosRenyi, DegreeTracksProbability) {
  ErdosRenyiParams p;
  p.node_count = 120;
  p.edge_probability = 0.08;
  double mean_degree = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    mean_degree += erdos_renyi_graph(p, rng).average_degree();
  }
  mean_degree /= 6.0;
  // Expected degree ≈ p·(n−1) = 9.52.
  EXPECT_NEAR(mean_degree, 0.08 * 119, 1.5);
}

TEST(ErdosRenyi, WeightsWithinBounds) {
  Rng rng(3);
  ErdosRenyiParams p;
  p.node_count = 60;
  p.min_weight = 2.0;
  p.max_weight = 4.0;
  const Graph g = erdos_renyi_graph(p, rng);
  for (const Link& l : g.links()) {
    EXPECT_GE(l.weight, 2.0);
    EXPECT_LT(l.weight, 4.0);
  }
}

TEST(ErdosRenyi, PatchesSparseSamples) {
  Rng rng(4);
  ErdosRenyiParams p;
  p.node_count = 100;
  p.edge_probability = 0.005;  // far below the connectivity threshold
  p.max_resample_attempts = 2;
  const ErdosRenyiResult r = generate_erdos_renyi(p, rng);
  EXPECT_TRUE(r.graph.connected());
  EXPECT_GT(r.patched_links, 0);
}

TEST(ErdosRenyi, RejectsBadParameters) {
  Rng rng(5);
  ErdosRenyiParams p;
  p.node_count = 1;
  EXPECT_THROW(erdos_renyi_graph(p, rng), std::invalid_argument);
  p.node_count = 10;
  p.edge_probability = 0.0;
  EXPECT_THROW(erdos_renyi_graph(p, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, AlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    BarabasiAlbertParams p;
    p.node_count = 100;
    const Graph g = barabasi_albert_graph(p, rng);
    EXPECT_TRUE(g.connected()) << "seed " << seed;
    EXPECT_EQ(g.node_count(), 100);
  }
}

TEST(BarabasiAlbert, MeanDegreeNearTwoM) {
  Rng rng(7);
  BarabasiAlbertParams p;
  p.node_count = 200;
  p.edges_per_node = 3;
  const Graph g = barabasi_albert_graph(p, rng);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.8);
}

TEST(BarabasiAlbert, ProducesHeavyTail) {
  // Preferential attachment must yield hubs: the max degree should far
  // exceed the mean (an Erdős–Rényi graph of the same density keeps its
  // maximum within a few multiples).
  Rng rng(8);
  BarabasiAlbertParams p;
  p.node_count = 300;
  p.edges_per_node = 2;
  const Graph g = barabasi_albert_graph(p, rng);
  int max_degree = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    max_degree = std::max(max_degree, g.degree(n));
  }
  EXPECT_GT(max_degree, 6.0 * g.average_degree());
}

TEST(BarabasiAlbert, DeterministicPerSeed) {
  BarabasiAlbertParams p;
  p.node_count = 60;
  Rng a(99);
  Rng b(99);
  const Graph ga = barabasi_albert_graph(p, a);
  const Graph gb = barabasi_albert_graph(p, b);
  ASSERT_EQ(ga.link_count(), gb.link_count());
  for (LinkId l = 0; l < ga.link_count(); ++l) {
    EXPECT_EQ(ga.link(l).a, gb.link(l).a);
    EXPECT_EQ(ga.link(l).b, gb.link(l).b);
  }
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(10);
  BarabasiAlbertParams p;
  p.node_count = 2;
  p.edges_per_node = 3;
  EXPECT_THROW(barabasi_albert_graph(p, rng), std::invalid_argument);
  p.edges_per_node = 0;
  EXPECT_THROW(barabasi_albert_graph(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace smrp::net
