#include "net/shortest_path.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::net {
namespace {

TEST(Dijkstra, GridDistancesAreManhattan) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[8], 4.0);
  EXPECT_DOUBLE_EQ(t.dist[4], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_EQ(t.hops[8], 4);
}

TEST(Dijkstra, PathReconstructionEndsAtTarget) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  const std::vector<NodeId> path = t.path_from_source(8);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_EQ(path.size(), 5u);
  const std::vector<LinkId> links = t.link_path_from_source(8);
  EXPECT_EQ(links.size(), 4u);
}

TEST(Dijkstra, PathToSourceIsReversed) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  const auto fwd = t.path_from_source(8);
  auto bwd = t.path_to_source(8);
  std::reverse(bwd.begin(), bwd.end());
  EXPECT_EQ(fwd, bwd);
}

TEST(Dijkstra, RespectsWeights) {
  const testing::Fig1Topology fig;
  const ShortestPathTree t = dijkstra(fig.graph, fig.S);
  EXPECT_DOUBLE_EQ(t.dist[fig.D], 2.0);  // S–A–D, not S–B–D (3)
  EXPECT_EQ(t.path_from_source(fig.D),
            (std::vector<NodeId>{fig.S, fig.A, fig.D}));
}

TEST(Dijkstra, UnreachableNodesReportInfinity) {
  Graph g(3);
  g.add_link(0, 1, 1.0);
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.dist[2], kInfinity);
  EXPECT_TRUE(t.path_from_source(2).empty());
  EXPECT_TRUE(t.link_path_from_source(2).empty());
}

TEST(Dijkstra, BannedLinkForcesDetour) {
  const testing::Fig1Topology fig;
  ExclusionSet excl(fig.graph);
  excl.ban_link(fig.AD);
  const ShortestPathTree t = dijkstra(fig.graph, fig.S, excl);
  EXPECT_DOUBLE_EQ(t.dist[fig.D], 3.0);  // S–B–D
  EXPECT_EQ(t.path_from_source(fig.D),
            (std::vector<NodeId>{fig.S, fig.B, fig.D}));
}

TEST(Dijkstra, BannedNodeIsNeverTraversed) {
  const testing::Fig1Topology fig;
  ExclusionSet excl(fig.graph);
  excl.ban_node(fig.A);
  const ShortestPathTree t = dijkstra(fig.graph, fig.S, excl);
  EXPECT_FALSE(t.reachable(fig.A));
  EXPECT_DOUBLE_EQ(t.dist[fig.C], 5.0);  // S–B–D–C
}

TEST(Dijkstra, BannedSourceThrows) {
  const Graph g = testing::grid3x3();
  ExclusionSet excl(g);
  excl.ban_node(0);
  EXPECT_THROW(dijkstra(g, 0, excl), std::invalid_argument);
}

TEST(Dijkstra, InvalidSourceThrows) {
  const Graph g = testing::grid3x3();
  EXPECT_THROW(dijkstra(g, 99), std::out_of_range);
}

// ---- ExclusionSet sizing and signature ------------------------------------

TEST(ExclusionSet, OutOfRangeIdsAreHardErrors) {
  const Graph g = testing::grid3x3();
  ExclusionSet excl(g);
  // Ids beyond the graph the set was built for must throw, not silently
  // resize (the old auto-resize masked graph/set mismatches).
  EXPECT_THROW(excl.ban_node(static_cast<NodeId>(g.node_count())),
               std::out_of_range);
  EXPECT_THROW(excl.ban_node(-1), std::out_of_range);
  EXPECT_THROW(excl.ban_link(static_cast<LinkId>(g.link_count())),
               std::out_of_range);
  EXPECT_THROW(excl.allow_link(-1), std::out_of_range);
  // Probes stay tolerant: asking about a foreign id is just "not banned".
  EXPECT_FALSE(excl.node_banned(99));
  EXPECT_FALSE(excl.link_banned(99));
}

TEST(ExclusionSet, DefaultConstructedSetRejectsAllBans) {
  ExclusionSet excl;
  EXPECT_TRUE(excl.empty());
  EXPECT_THROW(excl.ban_node(0), std::out_of_range);
  EXPECT_THROW(excl.ban_link(0), std::out_of_range);
}

TEST(ExclusionSet, SignatureIsOrderIndependent) {
  const Graph g = testing::grid3x3();
  ExclusionSet a(g);
  a.ban_node(2);
  a.ban_link(0);
  a.ban_link(3);
  ExclusionSet b(g);
  b.ban_link(3);
  b.ban_node(2);
  b.ban_link(0);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_NE(a.signature(), 0u);

  // Ban/allow round-trips restore the signature exactly.
  const std::uint64_t before = a.signature();
  a.ban_node(5);
  EXPECT_NE(a.signature(), before);
  a.allow_node(5);
  EXPECT_EQ(a.signature(), before);
  // Re-banning an already banned id is a no-op, not a signature flip.
  a.ban_node(2);
  EXPECT_EQ(a.signature(), before);
}

TEST(ExclusionSet, NodeAndLinkIdsHashApart) {
  const Graph g = testing::grid3x3();
  ExclusionSet node_ban(g);
  node_ban.ban_node(1);
  ExclusionSet link_ban(g);
  link_ban.ban_link(1);
  EXPECT_NE(node_ban.signature(), link_ban.signature());
}

TEST(ExclusionSet, BannedIdListsAreSortedAscending) {
  const Graph g = testing::grid3x3();
  ExclusionSet excl(g);
  excl.ban_node(7);
  excl.ban_node(2);
  excl.ban_link(5);
  excl.ban_link(1);
  EXPECT_EQ(excl.banned_nodes(), (std::vector<NodeId>{2, 7}));
  EXPECT_EQ(excl.banned_links(), (std::vector<LinkId>{1, 5}));
  EXPECT_EQ(excl.banned_node_count(), 2);
  EXPECT_EQ(excl.banned_link_count(), 2);
}

TEST(DijkstraAbsorbing, AbsorbingNodesDoNotRelay) {
  // 0 –1– 1 –1– 2, plus a long direct 0–2 of weight 10: with 1 absorbing,
  // node 2 must be reached via the direct link.
  Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  g.add_link(0, 2, 10.0);
  std::vector<char> absorbing{0, 1, 0};
  const ShortestPathTree t = dijkstra_absorbing(g, 0, absorbing);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);   // reachable as a destination
  EXPECT_DOUBLE_EQ(t.dist[2], 10.0);  // but never expanded
}

TEST(DijkstraAbsorbing, SizesMustMatch) {
  const Graph g = testing::grid3x3();
  EXPECT_THROW(dijkstra_absorbing(g, 0, std::vector<char>(3, 0)),
               std::invalid_argument);
}

TEST(DijkstraAbsorbing, AbsorbingSourceThrows) {
  const Graph g = testing::grid3x3();
  std::vector<char> absorbing(9, 0);
  absorbing[0] = 1;
  EXPECT_THROW(dijkstra_absorbing(g, 0, absorbing), std::invalid_argument);
}

// ---- Deterministic equal-cost tie-breaks ----------------------------------

TEST(DijkstraTieBreak, EqualCostPrefersFewerHops) {
  // Diamond: 0–1–3 and 0–2–3 both cost 2.0; a direct 0–3 link also costs
  // 2.0 but takes one hop. The tie-break must settle on the direct link.
  Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(2, 3, 1.0);
  g.add_link(0, 3, 2.0);
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[3], 2.0);
  EXPECT_EQ(t.hops[3], 1);
  EXPECT_EQ(t.parent[3], 0);
}

TEST(DijkstraTieBreak, EqualCostEqualHopsPrefersLowestPredecessor) {
  // Equal-weight diamond: two 2-hop, cost-2 paths to node 3 (via 1 and
  // via 2). The deterministic tie-break picks the lowest predecessor id,
  // independent of link insertion order, and never disturbs the source's
  // kNoNode parent sentinel.
  for (const bool reversed : {false, true}) {
    Graph g(4);
    if (reversed) {
      g.add_link(0, 2, 1.0);
      g.add_link(2, 3, 1.0);
      g.add_link(0, 1, 1.0);
      g.add_link(1, 3, 1.0);
    } else {
      g.add_link(0, 1, 1.0);
      g.add_link(1, 3, 1.0);
      g.add_link(0, 2, 1.0);
      g.add_link(2, 3, 1.0);
    }
    const ShortestPathTree t = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(t.dist[3], 2.0);
    EXPECT_EQ(t.hops[3], 2);
    EXPECT_EQ(t.parent[3], 1) << "insertion order reversed=" << reversed;
    EXPECT_EQ(t.parent[0], kNoNode);
    EXPECT_EQ(t.hops[0], 0);
  }
}

TEST(DijkstraTieBreak, LadderOfDiamondsIsStableEndToEnd) {
  // Chain three equal-weight diamonds; every stage must resolve to the
  // lower-id middle node so the full path is reproducible.
  Graph g(10);
  NodeId entry = 0;
  for (int stage = 0; stage < 3; ++stage) {
    const NodeId lo = static_cast<NodeId>(3 * stage + 1);
    const NodeId hi = static_cast<NodeId>(3 * stage + 2);
    const NodeId exit = static_cast<NodeId>(3 * stage + 3);
    g.add_link(entry, hi, 1.0);
    g.add_link(hi, exit, 1.0);
    g.add_link(entry, lo, 1.0);
    g.add_link(lo, exit, 1.0);
    entry = exit;
  }
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_EQ(t.path_from_source(9), (std::vector<NodeId>{0, 1, 3, 4, 6, 7, 9}));
}

// ---- DijkstraWorkspace equivalence ----------------------------------------

namespace {
void expect_same_tree(const ShortestPathTree& a, const ShortestPathTree& b) {
  ASSERT_EQ(a.source, b.source);
  ASSERT_EQ(a.dist, b.dist);
  ASSERT_EQ(a.parent, b.parent);
  ASSERT_EQ(a.parent_link, b.parent_link);
  ASSERT_EQ(a.hops, b.hops);
}
}  // namespace

TEST(DijkstraWorkspaceTest, MatchesFreshRunWithExclusions) {
  const testing::Fig1Topology fig;
  DijkstraWorkspace workspace;
  expect_same_tree(workspace.run(fig.graph, fig.S), dijkstra(fig.graph, fig.S));
  ExclusionSet excl(fig.graph);
  excl.ban_link(fig.AD);
  expect_same_tree(workspace.run(fig.graph, fig.S, excl),
                   dijkstra(fig.graph, fig.S, excl));
  // run_into fills a caller-owned tree with the identical result.
  ShortestPathTree out;
  workspace.run_into(fig.graph, fig.S, excl, out);
  expect_same_tree(out, dijkstra(fig.graph, fig.S, excl));
}

TEST(DijkstraWorkspaceTest, RejectsBadSourcesLikeFreeFunction) {
  const Graph g = testing::grid3x3();
  DijkstraWorkspace workspace;
  EXPECT_THROW(workspace.run(g, 99), std::out_of_range);
  ExclusionSet excl(g);
  excl.ban_node(0);
  EXPECT_THROW(workspace.run(g, 0, excl), std::invalid_argument);
  std::vector<char> absorbing(9, 0);
  absorbing[0] = 1;
  EXPECT_THROW(workspace.run_absorbing(g, 0, absorbing),
               std::invalid_argument);
}

// ---- Property-style sweeps over random graphs -----------------------------

class DijkstraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraProperty, TriangleInequalityOverEveryLink) {
  Rng rng(GetParam());
  WaxmanParams params;
  params.node_count = 60;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 0);
  for (const Link& l : g.links()) {
    ASSERT_LE(t.dist[l.a], t.dist[l.b] + l.weight + 1e-9);
    ASSERT_LE(t.dist[l.b], t.dist[l.a] + l.weight + 1e-9);
  }
}

TEST_P(DijkstraProperty, ParentEdgeIsTight) {
  Rng rng(GetParam());
  WaxmanParams params;
  params.node_count = 60;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 0);
  for (NodeId n = 1; n < g.node_count(); ++n) {
    ASSERT_TRUE(t.reachable(n));
    const NodeId p = t.parent[static_cast<std::size_t>(n)];
    const LinkId pl = t.parent_link[static_cast<std::size_t>(n)];
    ASSERT_NE(p, kNoNode);
    ASSERT_NEAR(t.dist[static_cast<std::size_t>(n)],
                t.dist[static_cast<std::size_t>(p)] + g.link(pl).weight,
                1e-9);
  }
}

TEST_P(DijkstraProperty, PathWeightMatchesDistance) {
  Rng rng(GetParam() ^ 0x9e37ULL);
  WaxmanParams params;
  params.node_count = 40;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 3 % g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const auto path = t.path_from_source(n);
    double w = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      w += g.link(*g.link_between(path[i - 1], path[i])).weight;
    }
    ASSERT_NEAR(w, t.dist[static_cast<std::size_t>(n)], 1e-9);
  }
}

TEST_P(DijkstraProperty, AbsorbingDistancesNeverBeatPlain) {
  Rng rng(GetParam() ^ 0xabcdULL);
  WaxmanParams params;
  params.node_count = 50;
  const Graph g = waxman_graph(params, rng);
  std::vector<char> absorbing(static_cast<std::size_t>(g.node_count()), 0);
  // Absorb every 5th node (but not the source).
  for (NodeId n = 1; n < g.node_count(); n += 5) {
    absorbing[static_cast<std::size_t>(n)] = 1;
  }
  const ShortestPathTree plain = dijkstra(g, 0);
  const ShortestPathTree absorbed = dijkstra_absorbing(g, 0, absorbing);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (!absorbed.reachable(n)) continue;
    ASSERT_GE(absorbed.dist[static_cast<std::size_t>(n)],
              plain.dist[static_cast<std::size_t>(n)] - 1e-9);
  }
}

TEST_P(DijkstraProperty, WorkspaceReuseMatchesFreshRuns) {
  // One workspace recycled across graphs of different sizes, sources,
  // exclusions and absorbing sets must reproduce the free functions
  // exactly — the preallocated buffers may never leak state between runs.
  Rng rng(GetParam() ^ 0x5eedULL);
  DijkstraWorkspace workspace;
  for (const int nodes : {30, 70, 40}) {
    WaxmanParams params;
    params.node_count = nodes;
    const Graph g = waxman_graph(params, rng);
    for (int round = 0; round < 3; ++round) {
      const auto source =
          static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
      expect_same_tree(workspace.run(g, source), dijkstra(g, source));

      ExclusionSet excl(g);
      excl.ban_link(static_cast<LinkId>(
          rng.below(static_cast<std::uint64_t>(g.link_count()))));
      for (NodeId n = 0; n < g.node_count(); n += 7) {
        if (n != source) excl.ban_node(n);
      }
      expect_same_tree(workspace.run(g, source, excl),
                       dijkstra(g, source, excl));

      std::vector<char> absorbing(static_cast<std::size_t>(nodes), 0);
      for (NodeId n = 0; n < g.node_count(); n += 3) {
        if (n != source) absorbing[static_cast<std::size_t>(n)] = 1;
      }
      expect_same_tree(workspace.run_absorbing(g, source, absorbing),
                       dijkstra_absorbing(g, source, absorbing));
      ShortestPathTree out;
      workspace.run_absorbing_into(g, source, absorbing, ExclusionSet{}, out);
      expect_same_tree(out, dijkstra_absorbing(g, source, absorbing));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace smrp::net
