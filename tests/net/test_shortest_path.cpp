#include "net/shortest_path.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::net {
namespace {

TEST(Dijkstra, GridDistancesAreManhattan) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[8], 4.0);
  EXPECT_DOUBLE_EQ(t.dist[4], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_EQ(t.hops[8], 4);
}

TEST(Dijkstra, PathReconstructionEndsAtTarget) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  const std::vector<NodeId> path = t.path_from_source(8);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  EXPECT_EQ(path.size(), 5u);
  const std::vector<LinkId> links = t.link_path_from_source(8);
  EXPECT_EQ(links.size(), 4u);
}

TEST(Dijkstra, PathToSourceIsReversed) {
  const Graph g = testing::grid3x3();
  const ShortestPathTree t = dijkstra(g, 0);
  const auto fwd = t.path_from_source(8);
  auto bwd = t.path_to_source(8);
  std::reverse(bwd.begin(), bwd.end());
  EXPECT_EQ(fwd, bwd);
}

TEST(Dijkstra, RespectsWeights) {
  const testing::Fig1Topology fig;
  const ShortestPathTree t = dijkstra(fig.graph, fig.S);
  EXPECT_DOUBLE_EQ(t.dist[fig.D], 2.0);  // S–A–D, not S–B–D (3)
  EXPECT_EQ(t.path_from_source(fig.D),
            (std::vector<NodeId>{fig.S, fig.A, fig.D}));
}

TEST(Dijkstra, UnreachableNodesReportInfinity) {
  Graph g(3);
  g.add_link(0, 1, 1.0);
  const ShortestPathTree t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.dist[2], kInfinity);
  EXPECT_TRUE(t.path_from_source(2).empty());
  EXPECT_TRUE(t.link_path_from_source(2).empty());
}

TEST(Dijkstra, BannedLinkForcesDetour) {
  const testing::Fig1Topology fig;
  ExclusionSet excl(fig.graph);
  excl.ban_link(fig.AD);
  const ShortestPathTree t = dijkstra(fig.graph, fig.S, excl);
  EXPECT_DOUBLE_EQ(t.dist[fig.D], 3.0);  // S–B–D
  EXPECT_EQ(t.path_from_source(fig.D),
            (std::vector<NodeId>{fig.S, fig.B, fig.D}));
}

TEST(Dijkstra, BannedNodeIsNeverTraversed) {
  const testing::Fig1Topology fig;
  ExclusionSet excl(fig.graph);
  excl.ban_node(fig.A);
  const ShortestPathTree t = dijkstra(fig.graph, fig.S, excl);
  EXPECT_FALSE(t.reachable(fig.A));
  EXPECT_DOUBLE_EQ(t.dist[fig.C], 5.0);  // S–B–D–C
}

TEST(Dijkstra, BannedSourceThrows) {
  const Graph g = testing::grid3x3();
  ExclusionSet excl(g);
  excl.ban_node(0);
  EXPECT_THROW(dijkstra(g, 0, excl), std::invalid_argument);
}

TEST(Dijkstra, InvalidSourceThrows) {
  const Graph g = testing::grid3x3();
  EXPECT_THROW(dijkstra(g, 99), std::out_of_range);
}

TEST(DijkstraAbsorbing, AbsorbingNodesDoNotRelay) {
  // 0 –1– 1 –1– 2, plus a long direct 0–2 of weight 10: with 1 absorbing,
  // node 2 must be reached via the direct link.
  Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  g.add_link(0, 2, 10.0);
  std::vector<char> absorbing{0, 1, 0};
  const ShortestPathTree t = dijkstra_absorbing(g, 0, absorbing);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);   // reachable as a destination
  EXPECT_DOUBLE_EQ(t.dist[2], 10.0);  // but never expanded
}

TEST(DijkstraAbsorbing, SizesMustMatch) {
  const Graph g = testing::grid3x3();
  EXPECT_THROW(dijkstra_absorbing(g, 0, std::vector<char>(3, 0)),
               std::invalid_argument);
}

TEST(DijkstraAbsorbing, AbsorbingSourceThrows) {
  const Graph g = testing::grid3x3();
  std::vector<char> absorbing(9, 0);
  absorbing[0] = 1;
  EXPECT_THROW(dijkstra_absorbing(g, 0, absorbing), std::invalid_argument);
}

// ---- Property-style sweeps over random graphs -----------------------------

class DijkstraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraProperty, TriangleInequalityOverEveryLink) {
  Rng rng(GetParam());
  WaxmanParams params;
  params.node_count = 60;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 0);
  for (const Link& l : g.links()) {
    ASSERT_LE(t.dist[l.a], t.dist[l.b] + l.weight + 1e-9);
    ASSERT_LE(t.dist[l.b], t.dist[l.a] + l.weight + 1e-9);
  }
}

TEST_P(DijkstraProperty, ParentEdgeIsTight) {
  Rng rng(GetParam());
  WaxmanParams params;
  params.node_count = 60;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 0);
  for (NodeId n = 1; n < g.node_count(); ++n) {
    ASSERT_TRUE(t.reachable(n));
    const NodeId p = t.parent[static_cast<std::size_t>(n)];
    const LinkId pl = t.parent_link[static_cast<std::size_t>(n)];
    ASSERT_NE(p, kNoNode);
    ASSERT_NEAR(t.dist[static_cast<std::size_t>(n)],
                t.dist[static_cast<std::size_t>(p)] + g.link(pl).weight,
                1e-9);
  }
}

TEST_P(DijkstraProperty, PathWeightMatchesDistance) {
  Rng rng(GetParam() ^ 0x9e37ULL);
  WaxmanParams params;
  params.node_count = 40;
  const Graph g = waxman_graph(params, rng);
  const ShortestPathTree t = dijkstra(g, 3 % g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const auto path = t.path_from_source(n);
    double w = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      w += g.link(*g.link_between(path[i - 1], path[i])).weight;
    }
    ASSERT_NEAR(w, t.dist[static_cast<std::size_t>(n)], 1e-9);
  }
}

TEST_P(DijkstraProperty, AbsorbingDistancesNeverBeatPlain) {
  Rng rng(GetParam() ^ 0xabcdULL);
  WaxmanParams params;
  params.node_count = 50;
  const Graph g = waxman_graph(params, rng);
  std::vector<char> absorbing(static_cast<std::size_t>(g.node_count()), 0);
  // Absorb every 5th node (but not the source).
  for (NodeId n = 1; n < g.node_count(); n += 5) {
    absorbing[static_cast<std::size_t>(n)] = 1;
  }
  const ShortestPathTree plain = dijkstra(g, 0);
  const ShortestPathTree absorbed = dijkstra_absorbing(g, 0, absorbing);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (!absorbed.reachable(n)) continue;
    ASSERT_GE(absorbed.dist[static_cast<std::size_t>(n)],
              plain.dist[static_cast<std::size_t>(n)] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace smrp::net
