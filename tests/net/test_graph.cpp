#include "net/graph.hpp"

#include <gtest/gtest.h>

#include "testing_topologies.hpp"

namespace smrp::net {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.link_count(), 0);
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(Graph, AddNodesReturnsFirstId) {
  Graph g;
  EXPECT_EQ(g.add_nodes(3), 0);
  EXPECT_EQ(g.add_nodes(2), 3);
  EXPECT_EQ(g.node_count(), 5);
}

TEST(Graph, AddLinkWiresBothDirections) {
  Graph g(3);
  const LinkId l = g.add_link(0, 2, 2.5);
  EXPECT_EQ(g.link(l).weight, 2.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].neighbor, 2);
  EXPECT_EQ(g.neighbors(2)[0].neighbor, 0);
  EXPECT_EQ(g.neighbors(0)[0].link, l);
}

TEST(Graph, LinkOtherEndpoint) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1, 1.0);
  EXPECT_EQ(g.link(l).other(0), 1);
  EXPECT_EQ(g.link(l).other(1), 0);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_link(1, 1, 1.0), std::invalid_argument);
}

TEST(Graph, RejectsParallelLink) {
  Graph g(2);
  g.add_link(0, 1, 1.0);
  EXPECT_THROW(g.add_link(1, 0, 2.0), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveWeight) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_link(-1, 1, 1.0), std::out_of_range);
}

TEST(Graph, LinkBetweenFindsEitherOrientation) {
  Graph g(3);
  const LinkId l = g.add_link(0, 1, 1.0);
  EXPECT_EQ(g.link_between(0, 1), l);
  EXPECT_EQ(g.link_between(1, 0), l);
  EXPECT_EQ(g.link_between(0, 2), std::nullopt);
  EXPECT_EQ(g.link_between(0, 99), std::nullopt);
}

TEST(Graph, AverageDegree) {
  const testing::Fig1Topology fig;
  // 5 nodes, 6 links → 2*6/5.
  EXPECT_DOUBLE_EQ(fig.graph.average_degree(), 12.0 / 5.0);
}

TEST(Graph, ConnectivityDetectsIsolation) {
  Graph g(3);
  g.add_link(0, 1, 1.0);
  EXPECT_FALSE(g.connected());
  g.add_link(1, 2, 1.0);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, ConnectedWithoutBridgeLink) {
  Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  const LinkId bridge = g.add_link(2, 3, 1.0);
  g.add_link(0, 2, 1.0);
  EXPECT_TRUE(g.connected());
  EXPECT_FALSE(g.connected_without(bridge));
  EXPECT_TRUE(g.connected_without(g.link_between(0, 1).value()));
}

TEST(Graph, PositionsRoundTrip) {
  Graph g(2);
  g.set_positions({{0.0, 0.0}, {3.0, 4.0}});
  ASSERT_EQ(g.positions().size(), 2u);
  EXPECT_DOUBLE_EQ(euclidean(g.positions()[0], g.positions()[1]), 5.0);
}

TEST(Graph, PositionCountMustMatch) {
  Graph g(2);
  EXPECT_THROW(g.set_positions({{0, 0}}), std::invalid_argument);
}

TEST(Graph, GridHasExpectedShape) {
  const Graph g = testing::grid3x3();
  EXPECT_EQ(g.node_count(), 9);
  EXPECT_EQ(g.link_count(), 12);
  EXPECT_EQ(g.degree(4), 4);  // center
  EXPECT_EQ(g.degree(0), 2);  // corner
  EXPECT_TRUE(g.connected());
}

TEST(Graph, ToStringMentionsEveryLink) {
  Graph g(2);
  g.add_link(0, 1, 1.5);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("nodes=2"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
}

}  // namespace
}  // namespace smrp::net
