#include "net/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace smrp::net {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 3.0);
    ASSERT_GE(x, -5.0);
    ASSERT_LT(x, 3.0);
  }
}

TEST(Rng, BelowStaysBelowBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundYieldsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream must not be a shifted copy of the parent's.
  std::vector<std::uint64_t> parent_vals;
  std::vector<std::uint64_t> child_vals;
  for (int i = 0; i < 100; ++i) {
    parent_vals.push_back(parent());
    child_vals.push_back(child());
  }
  EXPECT_NE(parent_vals, child_vals);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(33);
  Rng b(33);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, SplitMixKnownSequenceIsStable) {
  // Regression pin: changing the seeding scheme silently changes every
  // experiment; this freezes it.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace smrp::net
