// RoutingOracle: caching/versioning semantics, counter invariants, and the
// load-bearing property that every cached or incrementally repaired tree is
// bit-identical to a fresh Dijkstra run.
#include "net/routing_oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/random_graphs.hpp"
#include "net/rng.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::net {
namespace {

using testing::Fig1Topology;

void expect_identical(const ShortestPathTree& a, const ShortestPathTree& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_link, b.parent_link);
  EXPECT_EQ(a.hops, b.hops);
}

void expect_counter_invariants(const RoutingOracle::Stats& s) {
  EXPECT_EQ(s.lookups, s.cache_hits + s.cache_misses);
  EXPECT_EQ(s.cache_misses, s.incremental_repairs + s.full_runs);
}

TEST(RoutingOracle, PlainSpfMatchesFreeDijkstra) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  for (NodeId s = 0; s < fig.graph.node_count(); ++s) {
    expect_identical(*oracle.spf(s), dijkstra(fig.graph, s));
  }
  expect_counter_invariants(oracle.stats());
}

TEST(RoutingOracle, RepeatLookupIsACacheHit) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  const RoutingOracle::TreePtr first = oracle.spf(Fig1Topology::S);
  const RoutingOracle::TreePtr second = oracle.spf(Fig1Topology::S);
  EXPECT_EQ(first.get(), second.get());  // same immutable snapshot
  const auto s = oracle.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.full_runs, 1u);
  expect_counter_invariants(s);
}

TEST(RoutingOracle, ExclusionLookupsKeyOnTheBanSet) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  ExclusionSet banned(fig.graph);
  banned.ban_link(fig.AD);
  const RoutingOracle::TreePtr constrained =
      oracle.spf(Fig1Topology::S, banned);
  expect_identical(*constrained, dijkstra(fig.graph, Fig1Topology::S, banned));

  // An equal ban set built in a different order hits the same entry.
  ExclusionSet same(fig.graph);
  same.ban_link(fig.CD);
  same.ban_link(fig.AD);
  same.allow_link(fig.CD);
  const auto before = oracle.stats();
  const RoutingOracle::TreePtr again = oracle.spf(Fig1Topology::S, same);
  EXPECT_EQ(constrained.get(), again.get());
  EXPECT_EQ(oracle.stats().cache_hits, before.cache_hits + 1);
}

TEST(RoutingOracle, OneExtraBanRepairsIncrementally) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  (void)oracle.spf(Fig1Topology::S);  // prime the base tree

  ExclusionSet failed(fig.graph);
  failed.ban_link(fig.AD);  // on the SPF tree: D hangs off A
  const RoutingOracle::TreePtr repaired = oracle.spf(Fig1Topology::S, failed);
  expect_identical(*repaired, dijkstra(fig.graph, Fig1Topology::S, failed));

  const auto s = oracle.stats();
  EXPECT_EQ(s.incremental_repairs, 1u);
  EXPECT_EQ(s.full_runs, 1u);
  expect_counter_invariants(s);
}

TEST(RoutingOracle, NodeBanRepairsIncrementally) {
  Fig1Topology fig;
  // Banning A affects 3 of 5 nodes; raise the delta threshold so the
  // repair path (not the size fallback) is what gets exercised.
  RoutingOracle::Config config;
  config.incremental_max_fraction = 1.0;
  RoutingOracle oracle(fig.graph, config);
  (void)oracle.spf(Fig1Topology::S);

  ExclusionSet failed(fig.graph);
  failed.ban_node(Fig1Topology::A);  // cuts both C and D off the base tree
  const RoutingOracle::TreePtr repaired = oracle.spf(Fig1Topology::S, failed);
  expect_identical(*repaired, dijkstra(fig.graph, Fig1Topology::S, failed));
  EXPECT_EQ(oracle.stats().incremental_repairs, 1u);
}

TEST(RoutingOracle, OffTreeBanReusesTheBaseSnapshot) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  const RoutingOracle::TreePtr base = oracle.spf(Fig1Topology::S);

  ExclusionSet failed(fig.graph);
  failed.ban_link(fig.CD);  // CD carries no SPF traffic from S
  const RoutingOracle::TreePtr repaired = oracle.spf(Fig1Topology::S, failed);
  EXPECT_EQ(base.get(), repaired.get());  // the ban cannot change the tree
  EXPECT_EQ(oracle.stats().incremental_repairs, 1u);
}

TEST(RoutingOracle, ChainOfFailuresStaysIncremental) {
  // The failure_sequence workload: each step bans one more link on top of
  // the previous step's exclusion set. Every step after the first should
  // find its predecessor as a base.
  net::Rng rng(7);
  WaxmanParams wax;
  wax.node_count = 60;
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle oracle(g);
  (void)oracle.spf(0);

  ExclusionSet dead(g);
  std::uint64_t expected_incremental = 0;
  for (LinkId victim = 0; victim < 10; ++victim) {
    dead.ban_link(victim);
    const RoutingOracle::TreePtr t = oracle.spf(0, dead);
    expect_identical(*t, dijkstra(g, 0, dead));
    ++expected_incremental;
  }
  const auto s = oracle.stats();
  // All ten steps had their predecessor cached; a step only fails to be
  // incremental if its delta region crossed the size threshold.
  EXPECT_GE(s.incremental_repairs + s.full_runs, expected_incremental);
  EXPECT_GE(s.incremental_repairs, 1u);
  expect_counter_invariants(s);
}

TEST(RoutingOracle, TopologyChangeInvalidatesTheCache) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  const RoutingOracle::TreePtr before = oracle.spf(Fig1Topology::S);
  EXPECT_DOUBLE_EQ(before->dist[Fig1Topology::D], 2.0);  // S–A–D

  fig.graph.set_link_weight(fig.AD, 10.0);
  const RoutingOracle::TreePtr after = oracle.spf(Fig1Topology::S);
  EXPECT_NE(before.get(), after.get());
  expect_identical(*after, dijkstra(fig.graph, Fig1Topology::S));
  EXPECT_DOUBLE_EQ(after->dist[Fig1Topology::D], 3.0);  // S–B–D now wins

  // The old snapshot is still intact (callers may hold it across bumps).
  EXPECT_DOUBLE_EQ(before->dist[Fig1Topology::D], 2.0);
  const auto s = oracle.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.cache_misses, 2u);
}

TEST(RoutingOracle, ManualInvalidateFlushes) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  (void)oracle.spf(Fig1Topology::S);
  oracle.invalidate();
  (void)oracle.spf(Fig1Topology::S);
  const auto s = oracle.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 2u);
}

TEST(RoutingOracle, EvictionKeepsResultsCorrect) {
  net::Rng rng(11);
  WaxmanParams wax;
  wax.node_count = 40;
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle::Config config;
  config.max_entries = 2;
  RoutingOracle oracle(g, config);
  // Cycle through more sources than the cache holds, twice.
  for (int round = 0; round < 2; ++round) {
    for (NodeId s = 0; s < 6; ++s) {
      expect_identical(*oracle.spf(s), dijkstra(g, s));
    }
  }
  expect_counter_invariants(oracle.stats());
}

TEST(RoutingOracle, BadSourcesThrowWithoutTouchingCounters) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  EXPECT_THROW((void)oracle.spf(99), std::out_of_range);
  ExclusionSet banned(fig.graph);
  banned.ban_node(Fig1Topology::S);
  EXPECT_THROW((void)oracle.spf(Fig1Topology::S, banned),
               std::invalid_argument);
  EXPECT_EQ(oracle.stats().lookups, 0u);
}

TEST(RoutingOracle, TelemetryMirrorsTheCounters) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  obs::Telemetry telemetry;
  oracle.attach_telemetry(&telemetry);
  (void)oracle.spf(Fig1Topology::S);
  (void)oracle.spf(Fig1Topology::S);
  ExclusionSet failed(fig.graph);
  failed.ban_link(fig.AD);
  (void)oracle.spf(Fig1Topology::S, failed);

  auto& m = telemetry.metrics;
  EXPECT_EQ(m.counter("smrp.routing.lookups").value(), 3u);
  EXPECT_EQ(m.counter("smrp.routing.cache_hit").value(), 1u);
  EXPECT_EQ(m.counter("smrp.routing.cache_miss").value(), 2u);
  EXPECT_EQ(m.counter("smrp.routing.cache_incremental").value(), 1u);
  EXPECT_EQ(m.counter("smrp.routing.cache_fallback").value(), 1u);
  EXPECT_EQ(m.counter("smrp.routing.cache_hit").value() +
                m.counter("smrp.routing.cache_miss").value(),
            m.counter("smrp.routing.lookups").value());
}

TEST(RoutingOracle, WorkspaceLeasesMatchFreeFunctions) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  std::vector<char> absorbing(
      static_cast<std::size_t>(fig.graph.node_count()), 0);
  absorbing[Fig1Topology::C] = 1;
  {
    RoutingOracle::WorkspaceLease lease = oracle.workspace();
    const ShortestPathTree& got =
        lease->run_absorbing(fig.graph, Fig1Topology::D, absorbing);
    expect_identical(got,
                     dijkstra_absorbing(fig.graph, Fig1Topology::D, absorbing));
  }
  // Returned to the pool; a second lease works fine.
  RoutingOracle::WorkspaceLease again = oracle.workspace();
  expect_identical(again->run(fig.graph, Fig1Topology::B),
                   dijkstra(fig.graph, Fig1Topology::B));
}

TEST(DetourSearch, MatchesFreshScanAndDeltaUpdates) {
  net::Rng rng(23);
  WaxmanParams wax;
  wax.node_count = 50;
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle oracle(g);

  std::vector<char> targets(static_cast<std::size_t>(g.node_count()), 0);
  for (NodeId t : {NodeId{3}, NodeId{17}, NodeId{29}}) targets[t] = 1;
  const NodeId origin = 40;

  DetourSearch search;
  search.compute(oracle, origin, targets, ExclusionSet{});

  auto fresh_best = [&]() {
    const ShortestPathTree fresh = dijkstra_absorbing(g, origin, targets);
    NodeId best = kNoNode;
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (!targets[static_cast<std::size_t>(t)] || !fresh.reachable(t)) {
        continue;
      }
      if (best == kNoNode ||
          fresh.dist[static_cast<std::size_t>(t)] <
              fresh.dist[static_cast<std::size_t>(best)]) {
        best = t;
      }
    }
    return best;
  };
  ASSERT_TRUE(search.found());
  EXPECT_EQ(search.best_target(), fresh_best());

  // Grow the target set and check the O(|delta|) refresh against the
  // fresh answer over the same (grown) set.
  const std::vector<NodeId> delta = {NodeId{8}, NodeId{44}};
  for (NodeId t : delta) targets[static_cast<std::size_t>(t)] = 1;
  search.add_targets(delta);
  ASSERT_TRUE(search.found());
  EXPECT_EQ(search.best_target(), fresh_best());
}

TEST(RoutingOracle, ConcurrentLookupsKeepInvariants) {
  net::Rng rng(5);
  WaxmanParams wax;
  wax.node_count = 80;
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle oracle(g);

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, &oracle, t] {
      for (int i = 0; i < kIters; ++i) {
        const NodeId source = static_cast<NodeId>((t * 13 + i) % g.node_count());
        if (i % 3 == 0) {
          ExclusionSet banned(g);
          banned.ban_link(static_cast<LinkId>(i % g.link_count()));
          (void)oracle.spf(source, banned);
        } else {
          (void)oracle.spf(source);
        }
        if (i % 7 == 0) {
          RoutingOracle::WorkspaceLease lease = oracle.workspace();
          (void)lease->run(g, source);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const auto s = oracle.stats();
  EXPECT_EQ(s.lookups, static_cast<std::uint64_t>(kThreads) * kIters);
  expect_counter_invariants(s);
  // Spot-check correctness after the hammering.
  expect_identical(*oracle.spf(0), dijkstra(g, 0));
}

TEST(RoutingOracle, SameKeyStampedeComputesOnce) {
  // DESIGN.md §16's memoized-miss protocol: N threads racing on one cold
  // key must produce exactly ONE Dijkstra run. The stripe lock serializes
  // the probe/install, so the first thread is the only miss; every other
  // thread either waits on the in-flight cell or reads the ready entry —
  // a hit either way. The counters below are exact, not statistical.
  net::Rng rng(17);
  WaxmanParams wax;
  wax.node_count = 120;  // big enough that the run outlasts the arrivals
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle oracle(g);

  constexpr int kThreads = 16;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<RoutingOracle::TreePtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      results[static_cast<std::size_t>(t)] = oracle.spf(0);
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  const auto s = oracle.stats();
  EXPECT_EQ(s.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.full_runs, 1u);
  EXPECT_EQ(s.cache_hits, static_cast<std::uint64_t>(kThreads) - 1);
  // Everyone shares the single computed snapshot.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(t)].get());
  }
  expect_identical(*results[0], dijkstra(g, 0));
}

TEST(RoutingOracle, ConcurrentMissesNeverExceedDistinctKeys) {
  // The dedup guarantee at hammer scale: K threads sweeping the same key
  // set (sources and one-link exclusions) produce at most one computation
  // per distinct key, concurrency notwithstanding. max_entries is sized
  // past the key count so eviction cannot manufacture extra misses.
  net::Rng rng(29);
  WaxmanParams wax;
  wax.node_count = 60;
  const Graph g = waxman_graph(wax, rng);
  RoutingOracle::Config config;
  config.max_entries = 4096;
  RoutingOracle oracle(g, config);

  constexpr int kThreads = 8;
  constexpr int kSources = 10;
  constexpr int kBans = 10;
  constexpr int kRounds = 30;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, &oracle] {
      for (int round = 0; round < kRounds; ++round) {
        for (NodeId source = 0; source < kSources; ++source) {
          (void)oracle.spf(source);
          ExclusionSet banned(g);
          banned.ban_link(static_cast<LinkId>(source % kBans));
          (void)oracle.spf(source, banned);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const auto s = oracle.stats();
  constexpr std::uint64_t kDistinctKeys = 2 * kSources;
  EXPECT_EQ(s.lookups,
            static_cast<std::uint64_t>(kThreads) * kRounds * kDistinctKeys);
  EXPECT_EQ(s.lookups, s.cache_hits + s.cache_misses);  // exact, not approx
  EXPECT_LE(s.cache_misses, kDistinctKeys);
  EXPECT_LE(s.full_runs, kDistinctKeys);
  expect_counter_invariants(s);
}

TEST(RoutingOracle, SnapshotGaugesTrackResidentTrees) {
  Fig1Topology fig;
  RoutingOracle oracle(fig.graph);
  obs::Telemetry telemetry;
  oracle.attach_telemetry(&telemetry);
  EXPECT_EQ(oracle.snapshot_count(), 0u);
  EXPECT_EQ(oracle.snapshot_bytes(), 0u);

  (void)oracle.spf(Fig1Topology::S);
  (void)oracle.spf(Fig1Topology::A);
  (void)oracle.spf(Fig1Topology::S);  // hit: no new snapshot
  EXPECT_EQ(oracle.snapshot_count(), 2u);
  EXPECT_GT(oracle.snapshot_bytes(), 0u);
  // One run's footprint is count-proportional: per-node arrays only.
  EXPECT_EQ(oracle.snapshot_bytes() % oracle.snapshot_count(), 0u);
  auto& m = telemetry.metrics;
  EXPECT_EQ(m.gauge("smrp.routing.snapshot_count").value(),
            static_cast<double>(oracle.snapshot_count()));
  EXPECT_EQ(m.gauge("smrp.routing.snapshot_bytes").value(),
            static_cast<double>(oracle.snapshot_bytes()));

  // Invalidation is lazy: re-probing the flushed key drops the stale
  // entries of that stripe and installs the recomputed snapshot.
  oracle.invalidate();
  (void)oracle.spf(Fig1Topology::S);
  EXPECT_GE(oracle.snapshot_count(), 1u);
  EXPECT_LE(oracle.snapshot_count(), 2u);
  EXPECT_EQ(m.gauge("smrp.routing.snapshot_count").value(),
            static_cast<double>(oracle.snapshot_count()));
}

// ---------------------------------------------------------------------------
// Randomized oracle-vs-fresh equivalence property (the ISSUE's satellite):
// a long random mix of plain lookups, exclusion lookups, incremental
// chains, and topology mutations must stay bit-identical to free Dijkstra.
// ---------------------------------------------------------------------------

void run_equivalence_property(Graph& g, std::uint64_t seed, int steps) {
  net::Rng rng(seed);
  RoutingOracle oracle(g);
  ExclusionSet chain(g);  // grows like a persistent-failure sequence

  for (int step = 0; step < steps; ++step) {
    const NodeId source =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(
            g.node_count())));
    switch (rng.below(6)) {
      case 0: {  // plain lookup
        expect_identical(*oracle.spf(source), dijkstra(g, source));
        break;
      }
      case 1: {  // fresh random exclusion (join/reshape style)
        ExclusionSet banned(g);
        for (int b = 0; b < 3; ++b) {
          banned.ban_link(static_cast<LinkId>(rng.below(
              static_cast<std::uint64_t>(g.link_count()))));
        }
        if (!banned.node_banned(source)) {
          expect_identical(*oracle.spf(source, banned),
                           dijkstra(g, source, banned));
        }
        break;
      }
      case 2: {  // extend the persistent-failure chain by one link
        chain.ban_link(static_cast<LinkId>(rng.below(
            static_cast<std::uint64_t>(g.link_count()))));
        if (!chain.node_banned(source)) {
          expect_identical(*oracle.spf(source, chain),
                           dijkstra(g, source, chain));
        }
        break;
      }
      case 3: {  // node failure on top of a cached base
        ExclusionSet banned(g);
        const NodeId victim =
            static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(
                g.node_count())));
        banned.ban_node(victim);
        if (victim != source) {
          (void)oracle.spf(source);  // make sure the base exists
          expect_identical(*oracle.spf(source, banned),
                           dijkstra(g, source, banned));
        }
        break;
      }
      case 4: {  // repeat lookup — exercises the hit path
        expect_identical(*oracle.spf(source), dijkstra(g, source));
        expect_identical(*oracle.spf(source), dijkstra(g, source));
        break;
      }
      case 5: {  // topology mutation: reweigh a random link
        const LinkId l = static_cast<LinkId>(rng.below(
            static_cast<std::uint64_t>(g.link_count())));
        g.set_link_weight(l, 0.5 + 0.001 * static_cast<double>(rng.below(1000)));
        chain = ExclusionSet(g);  // old chain semantics died with the weights
        expect_identical(*oracle.spf(source), dijkstra(g, source));
        break;
      }
    }
  }
  expect_counter_invariants(oracle.stats());
  EXPECT_GT(oracle.stats().cache_hits, 0u);
}

TEST(RoutingOracleProperty, EquivalentToFreshDijkstraOnWaxman) {
  net::Rng rng(101);
  WaxmanParams wax;
  wax.node_count = 70;
  Graph g = waxman_graph(wax, rng);
  run_equivalence_property(g, 2026, 160);
}

TEST(RoutingOracleProperty, EquivalentToFreshDijkstraOnTransitStub) {
  net::Rng rng(303);
  TransitStubParams params;
  params.transit_nodes = 6;
  params.stubs_per_transit = 2;
  params.stub_size = 5;
  TransitStubTopology topo = generate_transit_stub(params, rng);
  run_equivalence_property(topo.graph, 404, 160);
}

}  // namespace
}  // namespace smrp::net
