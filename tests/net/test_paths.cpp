#include "net/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::net {
namespace {

TEST(PathUtils, WeightSumsLinks) {
  const testing::Fig1Topology fig;
  EXPECT_DOUBLE_EQ(path_weight(fig.graph, {fig.S, fig.A, fig.D}), 2.0);
  EXPECT_DOUBLE_EQ(path_weight(fig.graph, {fig.D, fig.C}), 2.0);
  EXPECT_DOUBLE_EQ(path_weight(fig.graph, {fig.S}), 0.0);
  EXPECT_DOUBLE_EQ(path_weight(fig.graph, {}), 0.0);
}

TEST(PathUtils, WeightRejectsNonAdjacentHop) {
  const testing::Fig1Topology fig;
  EXPECT_THROW(static_cast<void>(path_weight(fig.graph, {fig.S, fig.D})),
               std::invalid_argument);
}

TEST(PathUtils, LinksOfPath) {
  const testing::Fig1Topology fig;
  EXPECT_EQ(path_links(fig.graph, {fig.S, fig.A, fig.C}),
            (std::vector<LinkId>{fig.SA, fig.AC}));
}

TEST(PathUtils, SimplePathValidation) {
  const testing::Fig1Topology fig;
  EXPECT_TRUE(is_simple_path(fig.graph, {fig.S, fig.A, fig.C}));
  EXPECT_FALSE(is_simple_path(fig.graph, {fig.S, fig.A, fig.S}));  // repeat
  EXPECT_FALSE(is_simple_path(fig.graph, {fig.S, fig.D}));  // not adjacent
  EXPECT_TRUE(is_simple_path(fig.graph, {}));
}

TEST(PathUtils, ConcatenateJoinsAtJunction) {
  const testing::Fig1Topology fig;
  const Path left = make_path(fig.graph, {fig.D, fig.C, fig.A});
  const Path right = make_path(fig.graph, {fig.A, fig.S});
  const Path joined = concatenate(fig.graph, left, right);
  EXPECT_EQ(joined.nodes, (std::vector<NodeId>{fig.D, fig.C, fig.A, fig.S}));
  EXPECT_DOUBLE_EQ(joined.weight, 4.0);
}

TEST(PathUtils, ConcatenateRejectsMismatchedJunction) {
  const testing::Fig1Topology fig;
  const Path left = make_path(fig.graph, {fig.D, fig.C});
  const Path right = make_path(fig.graph, {fig.A, fig.S});
  EXPECT_THROW(concatenate(fig.graph, left, right), std::invalid_argument);
}

TEST(Yen, FirstPathIsShortest) {
  const testing::Fig1Topology fig;
  const auto paths = yen_k_shortest(fig.graph, fig.S, fig.D, 3);
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{fig.S, fig.A, fig.D}));
  EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
}

TEST(Yen, EnumeratesAlternativesInOrder) {
  const testing::Fig1Topology fig;
  const auto paths = yen_k_shortest(fig.graph, fig.S, fig.D, 4);
  ASSERT_EQ(paths.size(), 3u);  // S-A-D, S-B-D, S-A-C-D
  EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].weight, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].weight, 4.0);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].weight, paths[i].weight);
  }
}

TEST(Yen, HandlesUnreachableTarget) {
  Graph g(3);
  g.add_link(0, 1, 1.0);
  EXPECT_TRUE(yen_k_shortest(g, 0, 2, 5).empty());
}

TEST(Yen, ZeroOrNegativeKYieldsNothing) {
  const testing::Fig1Topology fig;
  EXPECT_TRUE(yen_k_shortest(fig.graph, fig.S, fig.D, 0).empty());
  EXPECT_TRUE(yen_k_shortest(fig.graph, fig.S, fig.D, -2).empty());
}

class YenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YenProperty, PathsAreSimpleDistinctAndSorted) {
  Rng rng(GetParam());
  WaxmanParams params;
  params.node_count = 30;
  const Graph g = waxman_graph(params, rng);
  const NodeId src = 0;
  const NodeId dst = g.node_count() - 1;
  const auto paths = yen_k_shortest(g, src, dst, 8);
  ASSERT_FALSE(paths.empty());
  std::set<std::vector<NodeId>> seen;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(is_simple_path(g, paths[i].nodes));
    ASSERT_EQ(paths[i].front(), src);
    ASSERT_EQ(paths[i].back(), dst);
    ASSERT_TRUE(seen.insert(paths[i].nodes).second) << "duplicate path";
    if (i > 0) {
      ASSERT_LE(paths[i - 1].weight, paths[i].weight + 1e-9);
    }
    ASSERT_NEAR(paths[i].weight, path_weight(g, paths[i].nodes), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenProperty,
                         ::testing::Values(4, 9, 16, 25, 36));

}  // namespace
}  // namespace smrp::net
