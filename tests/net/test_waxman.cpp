#include "net/waxman.hpp"

#include <gtest/gtest.h>

namespace smrp::net {
namespace {

TEST(Waxman, ProducesRequestedNodeCount) {
  Rng rng(1);
  WaxmanParams p;
  p.node_count = 64;
  const Graph g = waxman_graph(p, rng);
  EXPECT_EQ(g.node_count(), 64);
  EXPECT_EQ(g.positions().size(), 64u);
}

TEST(Waxman, AlwaysConnected) {
  Rng rng(2);
  WaxmanParams p;
  p.node_count = 100;
  p.alpha = 0.1;  // sparse — may need patching
  for (int i = 0; i < 5; ++i) {
    const Graph g = waxman_graph(p, rng);
    EXPECT_TRUE(g.connected());
  }
}

TEST(Waxman, DeterministicPerSeed) {
  WaxmanParams p;
  p.node_count = 50;
  Rng a(77);
  Rng b(77);
  const Graph ga = waxman_graph(p, a);
  const Graph gb = waxman_graph(p, b);
  ASSERT_EQ(ga.link_count(), gb.link_count());
  for (LinkId l = 0; l < ga.link_count(); ++l) {
    EXPECT_EQ(ga.link(l).a, gb.link(l).a);
    EXPECT_EQ(ga.link(l).b, gb.link(l).b);
    EXPECT_DOUBLE_EQ(ga.link(l).weight, gb.link(l).weight);
  }
}

TEST(Waxman, AlphaIncreasesDensity) {
  WaxmanParams lo;
  lo.node_count = 100;
  lo.alpha = 0.15;
  WaxmanParams hi = lo;
  hi.alpha = 0.3;
  double lo_deg = 0.0;
  double hi_deg = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng r1(seed);
    Rng r2(seed);
    lo_deg += waxman_graph(lo, r1).average_degree();
    hi_deg += waxman_graph(hi, r2).average_degree();
  }
  EXPECT_GT(hi_deg, lo_deg * 1.5);
}

TEST(Waxman, EuclideanWeightsMatchGeometry) {
  Rng rng(5);
  WaxmanParams p;
  p.node_count = 60;
  const Graph g = waxman_graph(p, rng);
  const auto pos = g.positions();
  int geometric = 0;
  for (const Link& l : g.links()) {
    const double d = euclidean(pos[static_cast<std::size_t>(l.a)],
                               pos[static_cast<std::size_t>(l.b)]);
    if (std::abs(d - l.weight) < 1e-6) ++geometric;
  }
  // Patch links also use geometric distance, so all links must match.
  EXPECT_EQ(geometric, g.link_count());
}

TEST(Waxman, UnitWeights) {
  Rng rng(6);
  WaxmanParams p;
  p.node_count = 60;
  p.weight_mode = LinkWeightMode::kUnit;
  const Graph g = waxman_graph(p, rng);
  for (const Link& l : g.links()) EXPECT_DOUBLE_EQ(l.weight, 1.0);
}

TEST(Waxman, UniformRandomWeightsInRange) {
  Rng rng(7);
  WaxmanParams p;
  p.node_count = 60;
  p.weight_mode = LinkWeightMode::kUniformRandom;
  const Graph g = waxman_graph(p, rng);
  for (const Link& l : g.links()) {
    EXPECT_GE(l.weight, 1.0);
    EXPECT_LT(l.weight, 10.0);
  }
}

TEST(Waxman, ReportsPatchingWhenItHappens) {
  Rng rng(8);
  WaxmanParams p;
  p.node_count = 100;
  p.alpha = 0.02;  // far below the connectivity threshold
  p.max_resample_attempts = 2;
  const WaxmanResult result = generate_waxman(p, rng);
  EXPECT_TRUE(result.graph.connected());
  EXPECT_GT(result.patched_links, 0);
}

TEST(Waxman, RejectsBadParameters) {
  Rng rng(9);
  WaxmanParams p;
  p.node_count = 1;
  EXPECT_THROW(waxman_graph(p, rng), std::invalid_argument);
  p.node_count = 10;
  p.alpha = 0.0;
  EXPECT_THROW(waxman_graph(p, rng), std::invalid_argument);
  p.alpha = 0.2;
  p.beta = 1.5;
  EXPECT_THROW(waxman_graph(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace smrp::net
