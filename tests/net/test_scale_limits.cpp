// Scale-limit audit (DESIGN.md §14): the widened-arithmetic guards that
// keep 32-bit NodeId/LinkId math from wrapping at 100k-node scale, plus a
// bulk-construction soak on the largest graph the CI tier can afford.
// Sanitizer builds (ASan/UBSan/TSan) run the same code on a reduced node
// count — the instrumentation slows allocation ~10x, and the guards are
// size-independent.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "multicast/tree.hpp"
#include "net/graph.hpp"
#include "net/routing_oracle.hpp"
#include "net/transit_stub.hpp"
#include "spf/spf_tree_builder.hpp"

namespace smrp::net {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kScaleNodes = 30'000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int kScaleNodes = 30'000;
#else
constexpr int kScaleNodes = 150'000;
#endif
#else
constexpr int kScaleNodes = 150'000;
#endif

/// Ring + long chords: connected, sparse, deterministic, and big.
std::vector<Link> ring_with_chords(int n) {
  std::vector<Link> links;
  links.reserve(static_cast<std::size_t>(n) + static_cast<std::size_t>(n) / 97);
  for (int i = 0; i < n; ++i) {
    links.push_back(Link{static_cast<NodeId>(i),
                         static_cast<NodeId>((i + 1) % n), 1.0});
  }
  for (int i = 0; i + n / 2 < n; i += 97) {
    links.push_back(Link{static_cast<NodeId>(i),
                         static_cast<NodeId>(i + n / 2), 1.0});
  }
  return links;
}

TEST(ScaleLimits, BulkBuildAndComponentMachineryAtScale) {
  const std::vector<Link> links = ring_with_chords(kScaleNodes);
  const Graph g = Graph::from_links(kScaleNodes, links);
  EXPECT_EQ(g.link_count(), static_cast<LinkId>(links.size()));
  // O(links) duplicate checking: exactly one probe per insertion.
  EXPECT_EQ(g.duplicate_check_ops(), static_cast<std::uint64_t>(links.size()));
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.component_count(), 1);
  EXPECT_EQ(g.reachable_count_from(0), kScaleNodes);
  // Cutting one ring edge must not disconnect (the ring closes around).
  EXPECT_TRUE(g.connected_without(0));
  // CSR adjacency covers every link twice.
  std::size_t half_edges = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    half_edges += g.neighbors(n).size();
  }
  EXPECT_EQ(half_edges, 2 * links.size());
}

TEST(ScaleLimits, SessionOnLargeGraphStaysConsistent) {
  const std::vector<Link> links = ring_with_chords(kScaleNodes);
  const Graph g = Graph::from_links(kScaleNodes, links);
  RoutingOracle oracle(g);
  baseline::SpfTreeBuilder builder(g, 0, &oracle);
  // Members spread over the whole id range, SHR path sums crossing many
  // thousand hops (the ring's diameter) without wrapping.
  int members = 0;
  for (int i = 1; i < kScaleNodes; i += kScaleNodes / 512) {
    if (builder.join(static_cast<NodeId>(i))) ++members;
  }
  EXPECT_EQ(builder.tree().member_count(), members);
  EXPECT_GT(members, 400);
  ASSERT_NO_THROW(builder.tree().validate());
}

TEST(ScaleLimits, AddNodesRefusesNodeIdOverflow) {
  Graph g(2);
  EXPECT_THROW(g.add_nodes(std::numeric_limits<NodeId>::max() - 1),
               std::overflow_error);
  // The failed call must not have bumped the count.
  EXPECT_EQ(g.node_count(), 2);
  g.add_nodes(3);
  EXPECT_EQ(g.node_count(), 5);
}

TEST(ScaleLimits, TransitStubRefusesProfilesPastNodeIdRange) {
  TransitStubParams p;
  p.transit_nodes = 100'000;
  p.stubs_per_transit = 1'000;
  p.stub_size = 1'000;  // 10^11 nodes: must throw, not wrap
  Rng rng(1);
  EXPECT_THROW(generate_transit_stub(p, rng), std::overflow_error);
}

}  // namespace
}  // namespace smrp::net
