#include "net/transit_stub.hpp"

#include <gtest/gtest.h>

namespace smrp::net {
namespace {

TransitStubTopology make_default(std::uint64_t seed = 42) {
  Rng rng(seed);
  TransitStubParams p;
  return generate_transit_stub(p, rng);
}

TEST(TransitStub, NodeCountMatchesShape) {
  const TransitStubTopology topo = make_default();
  const TransitStubParams p;
  const int expected =
      p.transit_nodes + p.transit_nodes * p.stubs_per_transit * p.stub_size;
  EXPECT_EQ(topo.graph.node_count(), expected);
  EXPECT_EQ(static_cast<int>(topo.domain_of_node.size()), expected);
}

TEST(TransitStub, Connected) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    EXPECT_TRUE(make_default(seed).graph.connected());
  }
}

TEST(TransitStub, DomainsPartitionNodes) {
  const TransitStubTopology topo = make_default();
  std::vector<int> counted(static_cast<std::size_t>(topo.domain_count()), 0);
  for (const DomainId d : topo.domain_of_node) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, topo.domain_count());
    ++counted[static_cast<std::size_t>(d)];
  }
  for (DomainId d = 0; d < topo.domain_count(); ++d) {
    EXPECT_EQ(counted[static_cast<std::size_t>(d)],
              static_cast<int>(topo.nodes_of_domain[static_cast<std::size_t>(d)].size()));
    for (const NodeId n : topo.nodes_of_domain[static_cast<std::size_t>(d)]) {
      EXPECT_EQ(topo.domain_of_node[static_cast<std::size_t>(n)], d);
    }
  }
}

TEST(TransitStub, TransitDomainHoldsTheCore) {
  const TransitStubTopology topo = make_default();
  const TransitStubParams p;
  EXPECT_EQ(static_cast<int>(topo.nodes_of_domain[0].size()),
            p.transit_nodes);
  for (const NodeId n : topo.nodes_of_domain[0]) {
    EXPECT_LT(n, p.transit_nodes);
  }
}

TEST(TransitStub, GatewaysAreTransitNodes) {
  const TransitStubTopology topo = make_default();
  const TransitStubParams p;
  EXPECT_EQ(topo.gateway_of_domain[0], kNoNode);
  for (DomainId d = 1; d < topo.domain_count(); ++d) {
    const NodeId gw = topo.gateway_of_domain[static_cast<std::size_t>(d)];
    ASSERT_GE(gw, 0);
    ASSERT_LT(gw, p.transit_nodes);
    // The gateway has a direct link into its stub domain.
    bool touches = false;
    for (const NodeId n : topo.nodes_of_domain[static_cast<std::size_t>(d)]) {
      if (topo.graph.link_between(gw, n)) touches = true;
    }
    EXPECT_TRUE(touches) << "domain " << d;
  }
}

TEST(TransitStub, StubDomainsAreInternallyReachableViaGateway) {
  // Every stub node must reach its gateway without leaving
  // {stub nodes} ∪ {gateway} — the property the hierarchical recovery
  // architecture (§3.3.3) depends on for intra-domain repair.
  const TransitStubTopology topo = make_default();
  for (DomainId d = 1; d < topo.domain_count(); ++d) {
    const auto& nodes = topo.nodes_of_domain[static_cast<std::size_t>(d)];
    std::vector<char> allowed(
        static_cast<std::size_t>(topo.graph.node_count()), 0);
    for (const NodeId n : nodes) allowed[static_cast<std::size_t>(n)] = 1;
    const NodeId gw = topo.gateway_of_domain[static_cast<std::size_t>(d)];
    allowed[static_cast<std::size_t>(gw)] = 1;
    // BFS within the allowed set from the gateway.
    std::vector<char> seen(allowed.size(), 0);
    std::vector<NodeId> stack{gw};
    seen[static_cast<std::size_t>(gw)] = 1;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : topo.graph.neighbors(n)) {
        if (!allowed[static_cast<std::size_t>(adj.neighbor)]) continue;
        if (!seen[static_cast<std::size_t>(adj.neighbor)]) {
          seen[static_cast<std::size_t>(adj.neighbor)] = 1;
          stack.push_back(adj.neighbor);
        }
      }
    }
    for (const NodeId n : nodes) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(n)])
          << "stub node " << n << " cut off inside domain " << d;
    }
  }
}

TEST(TransitStub, RejectsBadShape) {
  Rng rng(1);
  TransitStubParams p;
  p.transit_nodes = 1;
  EXPECT_THROW(generate_transit_stub(p, rng), std::invalid_argument);
  p.transit_nodes = 4;
  p.stub_size = 0;
  EXPECT_THROW(generate_transit_stub(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace smrp::net
