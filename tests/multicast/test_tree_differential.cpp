// Differential property suite for the struct-of-arrays MulticastTree
// (DESIGN.md §14): the production tree and the retired per-node-struct
// implementation (reference_tree.hpp) are driven through identical
// operation sequences and must agree on every observable after every
// mutation — roles, parents, child *order* (message send order in the
// distributed engine depends on it), N_R, SHR, sever results. Child-order
// agreement is the load-bearing claim: it is what makes the SoA refactor
// invisible to the byte-determinism gates on telemetry digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "multicast/reference_tree.hpp"
#include "multicast/tree.hpp"
#include "net/rng.hpp"
#include "net/shortest_path.hpp"
#include "net/waxman.hpp"

namespace smrp::mcast {
namespace {

using testing::ReferenceTree;

void expect_identical(const net::Graph& g, const MulticastTree& soa,
                      const ReferenceTree& ref, int step) {
  ASSERT_EQ(soa.member_count(), ref.member_count()) << "step " << step;
  ASSERT_EQ(soa.on_tree_count(), ref.on_tree_count()) << "step " << step;
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    ASSERT_EQ(soa.role(n), ref.role(n)) << "node " << n << " step " << step;
    ASSERT_EQ(soa.parent(n), ref.parent(n)) << "node " << n << " step " << step;
    ASSERT_EQ(soa.parent_link(n), ref.parent_link(n))
        << "node " << n << " step " << step;
    ASSERT_EQ(soa.subtree_members(n), ref.subtree_members(n))
        << "node " << n << " step " << step;
    // The order of the child walk must match the legacy vectors exactly.
    ASSERT_EQ(soa.children(n).to_vector(), ref.children(n))
        << "node " << n << " step " << step;
    if (ref.on_tree(n)) {
      ASSERT_EQ(soa.shr(n), ref.shr(n)) << "node " << n << " step " << step;
    }
  }
  ASSERT_EQ(soa.members(), ref.members()) << "step " << step;
  ASSERT_EQ(soa.tree_links(), ref.tree_links()) << "step " << step;
}

/// SPF-path graft onto whatever part of the tree the path first touches.
/// Both trees see the exact same path vector.
std::vector<net::NodeId> graft_path(const net::ShortestPathTree& spf,
                                    const ReferenceTree& ref,
                                    net::NodeId member) {
  std::vector<net::NodeId> path;
  for (net::NodeId cur = member;;
       cur = spf.parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (ref.on_tree(cur)) break;
  }
  return path;
}

class TreeDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeDifferential, SoaMatchesLegacyUnderChurnAndFailures) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 60;
  const net::Graph g = net::waxman_graph(wax, rng);
  const net::NodeId source = 0;
  const net::ShortestPathTree spf = net::dijkstra(g, source);

  MulticastTree soa(g, source);
  ReferenceTree ref(g, source);
  std::vector<net::NodeId> joined;

  for (int step = 0; step < 400; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.45 || joined.empty()) {
      // Join.
      const auto member =
          static_cast<net::NodeId>(1 + rng.below(g.node_count() - 1));
      if (ref.is_member(member)) continue;
      const std::vector<net::NodeId> path =
          ref.on_tree(member) ? std::vector<net::NodeId>{member}
                              : graft_path(spf, ref, member);
      soa.graft(member, path);
      ref.graft(member, path);
      joined.push_back(member);
    } else if (dice < 0.65) {
      // Leave.
      const std::size_t idx = rng.below(joined.size());
      soa.leave(joined[idx]);
      ref.leave(joined[idx]);
      joined.erase(joined.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (dice < 0.80) {
      // Reshape: move a random on-tree node to a random adjacent on-tree
      // node outside its own subtree (the one-hop move every reshaping
      // step in the protocol reduces to).
      const auto on_tree = soa.on_tree_nodes();
      const net::NodeId n =
          on_tree[rng.below(on_tree.size())];
      if (n == source) continue;
      net::NodeId merge = net::kNoNode;
      for (const auto [nbr, link] : g.neighbors(n)) {
        (void)link;
        if (ref.on_tree(nbr) && !ref.is_ancestor_or_self(n, nbr) &&
            nbr != ref.parent(n)) {
          merge = nbr;
          break;
        }
      }
      if (merge == net::kNoNode) continue;
      // Cross-check the §3.2.3 SHR adjustment on the candidate first.
      if (ref.is_member(n)) {
        ASSERT_EQ(soa.shr_excluding_subtree(merge, n),
                  ref.shr_excluding_subtree(merge, n))
            << "step " << step;
      }
      soa.move_subtree(n, {n, merge});
      ref.move_subtree(n, {n, merge});
    } else if (dice < 0.92) {
      // Link failure on a random tree link.
      const auto links = ref.tree_links();
      if (links.empty()) continue;
      const net::LinkId dead = links[rng.below(links.size())];
      ASSERT_EQ(soa.surviving_after_link(dead), ref.surviving_after_link(dead))
          << "step " << step;
      const auto lost_soa = soa.sever(dead);
      const auto lost_ref = ref.sever(dead);
      ASSERT_EQ(lost_soa, lost_ref) << "step " << step;
      for (const net::NodeId m : lost_soa) {
        joined.erase(std::remove(joined.begin(), joined.end(), m),
                     joined.end());
      }
    } else {
      // Node failure on a random non-source on-tree node.
      const auto on_tree = soa.on_tree_nodes();
      const net::NodeId dead = on_tree[rng.below(on_tree.size())];
      if (dead == source) continue;
      const auto lost_soa = soa.sever_node(dead);
      const auto lost_ref = ref.sever_node(dead);
      ASSERT_EQ(lost_soa, lost_ref) << "step " << step;
      joined.erase(std::remove(joined.begin(), joined.end(), dead),
                   joined.end());
      for (const net::NodeId m : lost_soa) {
        joined.erase(std::remove(joined.begin(), joined.end(), m),
                     joined.end());
      }
    }
    ASSERT_NO_FATAL_FAILURE(expect_identical(g, soa, ref, step));
    ASSERT_NO_THROW(soa.validate()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(TreeDifferentialEdge, SourceNodeFailureClearsBothIdentically) {
  net::Rng rng(7);
  net::WaxmanParams wax;
  wax.node_count = 30;
  const net::Graph g = net::waxman_graph(wax, rng);
  const net::ShortestPathTree spf = net::dijkstra(g, 0);
  MulticastTree soa(g, 0);
  ReferenceTree ref(g, 0);
  for (net::NodeId m = 1; m < 10; ++m) {
    if (ref.is_member(m)) continue;
    const auto path = ref.on_tree(m) ? std::vector<net::NodeId>{m}
                                     : graft_path(spf, ref, m);
    soa.graft(m, path);
    ref.graft(m, path);
  }
  ASSERT_EQ(soa.sever_node(0), ref.sever_node(0));
  EXPECT_EQ(soa.on_tree_count(), 0);
  EXPECT_EQ(ref.on_tree_count(), 0);
  EXPECT_EQ(soa.member_count(), ref.member_count());
}

}  // namespace
}  // namespace smrp::mcast
