#include "multicast/tree.hpp"

#include <gtest/gtest.h>

#include "net/rng.hpp"
#include "net/shortest_path.hpp"
#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::mcast {
namespace {

using testing::Fig1Topology;

/// Fig. 1(a) tree: members C and D, both through A.
MulticastTree fig1_tree(const Fig1Topology& fig) {
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(MulticastTree, FreshTreeHasOnlyTheSource) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  EXPECT_TRUE(tree.on_tree(fig.S));
  EXPECT_FALSE(tree.is_member(fig.S));
  EXPECT_EQ(tree.member_count(), 0);
  EXPECT_EQ(tree.on_tree_count(), 1);
  EXPECT_EQ(tree.shr(fig.S), 0);
  tree.validate();
}

TEST(MulticastTree, GraftBuildsPaperTree) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  tree.validate();

  EXPECT_TRUE(tree.is_member(fig.C));
  EXPECT_TRUE(tree.is_member(fig.D));
  EXPECT_EQ(tree.role(fig.A), NodeRole::kRelay);
  EXPECT_FALSE(tree.on_tree(fig.B));
  EXPECT_EQ(tree.member_count(), 2);

  EXPECT_EQ(tree.parent(fig.C), fig.A);
  EXPECT_EQ(tree.parent(fig.D), fig.A);
  EXPECT_EQ(tree.parent(fig.A), fig.S);

  // N_R: A carries both members.
  EXPECT_EQ(tree.subtree_members(fig.A), 2);
  EXPECT_EQ(tree.subtree_members(fig.C), 1);
  EXPECT_EQ(tree.subtree_members(fig.S), 2);
}

TEST(MulticastTree, ShrMatchesPaperExample) {
  // §3.1: SHR(S,C) = N_{L_SA} + N_{L_AC} = 2 + 1 = 3.
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  EXPECT_EQ(tree.shr(fig.C), 3);
  EXPECT_EQ(tree.shr(fig.D), 3);
  EXPECT_EQ(tree.shr(fig.A), 2);
  EXPECT_EQ(tree.shr(fig.S), 0);
}

TEST(MulticastTree, DelayAndHopsToSource) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  EXPECT_DOUBLE_EQ(tree.delay_to_source(fig.C), 2.0);
  EXPECT_EQ(tree.hops_to_source(fig.C), 2);
  EXPECT_DOUBLE_EQ(tree.delay_to_source(fig.S), 0.0);
  EXPECT_THROW(static_cast<void>(tree.delay_to_source(fig.B)),
               std::invalid_argument);
}

TEST(MulticastTree, PathToSource) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  EXPECT_EQ(tree.path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.A, fig.S}));
  EXPECT_TRUE(tree.path_to_source(fig.B).empty());
}

TEST(MulticastTree, TreeLinksAndCost) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  const auto links = tree.tree_links();
  EXPECT_EQ(links.size(), 3u);
  EXPECT_DOUBLE_EQ(tree.total_cost(), 3.0);  // SA + AC + AD
}

TEST(MulticastTree, GraftRejectsBadPaths) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  // Path must start at the member.
  EXPECT_THROW(tree.graft(fig.C, {fig.A, fig.S}), std::invalid_argument);
  // Path must end on-tree.
  EXPECT_THROW(tree.graft(fig.C, {fig.C, fig.A}), std::invalid_argument);
  // Non-adjacent hop.
  EXPECT_THROW(tree.graft(fig.D, {fig.D, fig.C, fig.S}),
               std::invalid_argument);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  // Crossing the tree before the merge node.
  EXPECT_THROW(tree.graft(fig.D, {fig.D, fig.A, fig.S}),
               std::invalid_argument);
  // The source cannot become a member.
  EXPECT_THROW(tree.graft(fig.S, {fig.S}), std::invalid_argument);
}

TEST(MulticastTree, GraftRejectsDegeneratePaths) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  // Empty graft: no UB, no state change — a clean rejection.
  EXPECT_THROW(tree.graft(fig.C, {}), std::invalid_argument);
  // Single-node graft for an off-tree member: there is no path at all.
  EXPECT_THROW(tree.graft(fig.C, {fig.C}), std::invalid_argument);
  // A duplicate hop would wire a node as its own ancestor.
  EXPECT_THROW(tree.graft(fig.D, {fig.D, fig.A, fig.D, fig.A, fig.S}),
               std::invalid_argument);
  EXPECT_EQ(tree.member_count(), 0);
  tree.validate();
  // After all those rejections the tree still accepts a valid graft.
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.validate();
  EXPECT_EQ(tree.member_count(), 1);
}

TEST(MulticastTree, RelayBecomesMemberInPlace) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  EXPECT_EQ(tree.role(fig.A), NodeRole::kRelay);
  tree.graft(fig.A, {fig.A});
  tree.validate();
  EXPECT_TRUE(tree.is_member(fig.A));
  EXPECT_EQ(tree.member_count(), 2);
  EXPECT_EQ(tree.subtree_members(fig.A), 2);
  EXPECT_EQ(tree.shr(fig.A), 2);
  EXPECT_EQ(tree.shr(fig.C), 3);
}

TEST(MulticastTree, LeavePrunesUselessRelays) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  tree.leave(fig.C);
  tree.validate();
  EXPECT_FALSE(tree.on_tree(fig.C));
  EXPECT_TRUE(tree.on_tree(fig.A));  // still serves D
  tree.leave(fig.D);
  tree.validate();
  EXPECT_FALSE(tree.on_tree(fig.A));
  EXPECT_EQ(tree.on_tree_count(), 1);  // only the source remains
  EXPECT_EQ(tree.member_count(), 0);
}

TEST(MulticastTree, LeaveKeepsForkingRelay) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  tree.leave(fig.D);
  tree.validate();
  EXPECT_FALSE(tree.on_tree(fig.D));
  EXPECT_TRUE(tree.is_member(fig.C));
  EXPECT_EQ(tree.subtree_members(fig.A), 1);
  EXPECT_EQ(tree.shr(fig.C), 2);
}

TEST(MulticastTree, LeaveByMemberWithDescendantsKeepsRelayRole) {
  // C joins through A; A then becomes a member; when A leaves, it must
  // remain a relay because C still depends on it.
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.A, {fig.A});
  tree.leave(fig.A);
  tree.validate();
  EXPECT_EQ(tree.role(fig.A), NodeRole::kRelay);
  EXPECT_TRUE(tree.is_member(fig.C));
}

TEST(MulticastTree, LeaveByNonMemberThrows) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  EXPECT_THROW(tree.leave(fig.B), std::invalid_argument);
  EXPECT_THROW(tree.leave(fig.A), std::invalid_argument);
}

TEST(MulticastTree, MoveSubtreeReattaches) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  // Move D from under A to under S via B (the Figure-2 disjoint tree).
  tree.move_subtree(fig.D, {fig.D, fig.B, fig.S});
  tree.validate();
  EXPECT_EQ(tree.parent(fig.D), fig.B);
  EXPECT_EQ(tree.parent(fig.B), fig.S);
  EXPECT_EQ(tree.role(fig.B), NodeRole::kRelay);
  EXPECT_EQ(tree.subtree_members(fig.A), 1);  // only C now
  EXPECT_EQ(tree.shr(fig.C), 2);
  EXPECT_EQ(tree.shr(fig.D), 2);  // N_B + N_D
}

TEST(MulticastTree, MoveSubtreeCarriesDescendants) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.D, {fig.D, fig.A, fig.S});
  tree.graft(fig.C, {fig.C, fig.D});  // C hangs below D
  tree.move_subtree(fig.D, {fig.D, fig.B, fig.S});
  tree.validate();
  EXPECT_EQ(tree.parent(fig.C), fig.D);
  EXPECT_EQ(tree.parent(fig.D), fig.B);
  EXPECT_FALSE(tree.on_tree(fig.A));  // old relay pruned
  EXPECT_EQ(tree.subtree_members(fig.D), 2);
}

TEST(MulticastTree, MoveSubtreeRejectsMergeIntoItself) {
  const Fig1Topology fig;
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.D, {fig.D, fig.A, fig.S});
  tree.graft(fig.C, {fig.C, fig.D});
  EXPECT_THROW(tree.move_subtree(fig.D, {fig.D, fig.C}),
               std::invalid_argument);
}

TEST(MulticastTree, SeverDropsDisconnectedComponent) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  const auto lost = tree.sever(fig.SA);
  tree.validate();
  EXPECT_EQ(lost, (std::vector<net::NodeId>{fig.C, fig.D}));
  EXPECT_EQ(tree.member_count(), 0);
  EXPECT_EQ(tree.on_tree_count(), 1);
  EXPECT_FALSE(tree.on_tree(fig.A));
}

TEST(MulticastTree, SeverOfLeafLinkDropsOneMember) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  const auto lost = tree.sever(fig.AD);
  tree.validate();
  EXPECT_EQ(lost, (std::vector<net::NodeId>{fig.D}));
  EXPECT_TRUE(tree.is_member(fig.C));
  EXPECT_EQ(tree.shr(fig.C), 2);  // D's contribution is gone
}

TEST(MulticastTree, SeverOfNonTreeLinkIsNoOp) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  EXPECT_TRUE(tree.sever(fig.BD).empty());
  tree.validate();
  EXPECT_EQ(tree.member_count(), 2);
}

TEST(MulticastTree, SurvivingAfterLink) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  const auto alive = tree.surviving_after_link(fig.SA);
  EXPECT_TRUE(alive[fig.S]);
  EXPECT_FALSE(alive[fig.A]);
  EXPECT_FALSE(alive[fig.C]);
  EXPECT_FALSE(alive[fig.D]);
  EXPECT_FALSE(alive[fig.B]);  // off-tree nodes never "survive"

  const auto alive2 = tree.surviving_after_link(fig.AD);
  EXPECT_TRUE(alive2[fig.S]);
  EXPECT_TRUE(alive2[fig.A]);
  EXPECT_TRUE(alive2[fig.C]);
  EXPECT_FALSE(alive2[fig.D]);
}

TEST(MulticastTree, SurvivingAfterNode) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  const auto alive = tree.surviving_after_node(fig.A);
  EXPECT_TRUE(alive[fig.S]);
  EXPECT_FALSE(alive[fig.A]);
  EXPECT_FALSE(alive[fig.C]);
  EXPECT_FALSE(alive[fig.D]);
  // Source failure kills everything.
  const auto none = tree.surviving_after_node(fig.S);
  for (net::NodeId n = 0; n < fig.graph.node_count(); ++n) {
    EXPECT_FALSE(none[static_cast<std::size_t>(n)]);
  }
}

TEST(MulticastTree, ShrExcludingSubtree) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  // If D's subtree (1 member) moved away, A would carry only C.
  EXPECT_EQ(tree.shr_excluding_subtree(fig.A, fig.D), 1);
  EXPECT_EQ(tree.shr_excluding_subtree(fig.S, fig.D), 0);
  // Excluding C from C's own path: A keeps D.
  EXPECT_EQ(tree.shr_excluding_subtree(fig.C, fig.C), 1);
}

TEST(MulticastTree, IsAncestorOrSelf) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  EXPECT_TRUE(tree.is_ancestor_or_self(fig.A, fig.C));
  EXPECT_TRUE(tree.is_ancestor_or_self(fig.S, fig.D));
  EXPECT_TRUE(tree.is_ancestor_or_self(fig.C, fig.C));
  EXPECT_FALSE(tree.is_ancestor_or_self(fig.C, fig.A));
  EXPECT_FALSE(tree.is_ancestor_or_self(fig.B, fig.C));
}

// ---- Randomised churn property test ---------------------------------------

class TreeChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeChurnProperty, InvariantsHoldUnderRandomChurn) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 50;
  const net::Graph g = net::waxman_graph(wax, rng);
  const net::NodeId source = 0;
  MulticastTree tree(g, source);
  const net::ShortestPathTree spf = net::dijkstra(g, source);

  std::vector<net::NodeId> joined;
  for (int step = 0; step < 200; ++step) {
    const bool can_leave = !joined.empty();
    const bool do_join = !can_leave || rng.uniform() < 0.6;
    if (do_join) {
      const auto member =
          static_cast<net::NodeId>(1 + rng.below(g.node_count() - 1));
      if (tree.is_member(member)) continue;
      if (tree.on_tree(member)) {
        tree.graft(member, {member});
      } else {
        // Graft along the SPF path up to the first on-tree node.
        std::vector<net::NodeId> graft;
        for (net::NodeId cur = member;;
             cur = spf.parent[static_cast<std::size_t>(cur)]) {
          graft.push_back(cur);
          if (tree.on_tree(cur)) break;
        }
        tree.graft(member, graft);
      }
      joined.push_back(member);
    } else {
      const std::size_t idx = rng.below(joined.size());
      tree.leave(joined[idx]);
      joined.erase(joined.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_NO_THROW(tree.validate()) << "step " << step;
    ASSERT_EQ(tree.member_count(), static_cast<int>(joined.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeChurnProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace smrp::mcast
