#include "multicast/metrics.hpp"

#include <gtest/gtest.h>

#include "testing_topologies.hpp"

namespace smrp::mcast {
namespace {

using testing::Fig1Topology;

MulticastTree fig1_tree(const Fig1Topology& fig) {
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(TreeMetrics, EmptyTree) {
  const Fig1Topology fig;
  const MulticastTree tree(fig.graph, fig.S);
  const TreeMetrics m = measure(tree);
  EXPECT_EQ(m.tree_link_count, 0);
  EXPECT_DOUBLE_EQ(m.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_member_delay, 0.0);
}

TEST(TreeMetrics, PaperTreeNumbers) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  const TreeMetrics m = measure(tree);
  EXPECT_EQ(m.tree_link_count, 3);
  EXPECT_DOUBLE_EQ(m.total_cost, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_member_delay, 2.0);
  EXPECT_DOUBLE_EQ(m.max_member_delay, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_member_hops, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_member_shr, 3.0);
  EXPECT_EQ(m.max_link_sharing, 2);           // L_SA carries both members
  EXPECT_DOUBLE_EQ(m.mean_link_sharing, 4.0 / 3.0);
}

TEST(TreeMetrics, LinkSharingListsNL) {
  const Fig1Topology fig;
  const MulticastTree tree = fig1_tree(fig);
  const auto sharing = link_sharing(tree);
  ASSERT_EQ(sharing.size(), 3u);
  // Ascending by link id: SA(0), AC(2), AD(3) with N_L 2, 1, 1.
  EXPECT_EQ(sharing[0], std::make_pair(fig.SA, 2));
  EXPECT_EQ(sharing[1], std::make_pair(fig.AC, 1));
  EXPECT_EQ(sharing[2], std::make_pair(fig.AD, 1));
}

TEST(TreeMetrics, SharingDropsAfterDisjointMove) {
  const Fig1Topology fig;
  MulticastTree tree = fig1_tree(fig);
  tree.move_subtree(fig.D, {fig.D, fig.B, fig.S});  // Figure-2 tree
  const TreeMetrics m = measure(tree);
  EXPECT_EQ(m.max_link_sharing, 1);  // fully disjoint member paths
  EXPECT_DOUBLE_EQ(m.total_cost, 5.0);  // SA + AC + SB + BD
}

}  // namespace
}  // namespace smrp::mcast
