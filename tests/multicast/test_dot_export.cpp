#include "multicast/dot_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "testing_topologies.hpp"

namespace smrp::mcast {
namespace {

using testing::Fig1Topology;

MulticastTree fig1_tree(const Fig1Topology& fig) {
  MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(DotExport, GraphContainsEveryNodeAndLink) {
  const Fig1Topology fig;
  std::ostringstream out;
  to_dot(fig.graph, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph smrp {"), std::string::npos);
  for (int n = 0; n < 5; ++n) {
    EXPECT_NE(dot.find("  " + std::to_string(n) + ";"), std::string::npos);
  }
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("3 -- 4"), std::string::npos);
}

TEST(DotExport, TreeHighlightsRoles) {
  const Fig1Topology fig;
  const std::string dot = to_dot_string(fig1_tree(fig));
  // Source double-circled, members filled green, off-tree grey.
  EXPECT_NE(dot.find("0 [shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("3 [style=filled, fillcolor=\"#a6d854\""),
            std::string::npos);
  EXPECT_NE(dot.find("2 [color=\"#cccccc\""), std::string::npos);
  // Tree links bold; non-tree links grey.
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
}

TEST(DotExport, CanOmitOffTreeClutter) {
  const Fig1Topology fig;
  DotOptions options;
  options.include_off_tree = false;
  const std::string dot = to_dot_string(fig1_tree(fig), options);
  EXPECT_EQ(dot.find("  2 ["), std::string::npos);  // B omitted
  EXPECT_EQ(dot.find("2 -- 4"), std::string::npos);
}

TEST(DotExport, CanOmitWeights) {
  const Fig1Topology fig;
  DotOptions options;
  options.include_weights = false;
  const std::string dot = to_dot_string(fig1_tree(fig), options);
  EXPECT_EQ(dot.find("label="), std::string::npos);
}

TEST(DotExport, BalancedBraces) {
  const Fig1Topology fig;
  const std::string dot = to_dot_string(fig1_tree(fig));
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace smrp::mcast
