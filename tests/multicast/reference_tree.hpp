// The retired per-node-struct MulticastTree, kept verbatim as the
// reference model for the SoA differential suite (DESIGN.md §14). This is
// the exact pre-refactor implementation — NodeState structs with one
// std::vector<NodeId> child list per node — so any divergence between it
// and the production struct-of-arrays tree under the same operation
// sequence is a refactor bug by definition.
//
// Test-only: never link this into production code.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "multicast/tree.hpp"
#include "net/graph.hpp"

namespace smrp::mcast::testing {

class ReferenceTree {
 public:
  ReferenceTree(const Graph& graph, NodeId source)
      : graph_(&graph), source_(source) {
    if (!graph.valid_node(source)) throw std::out_of_range("bad source");
    nodes_.resize(static_cast<std::size_t>(graph.node_count()));
    state(source_).role = NodeRole::kRelay;
    on_tree_count_ = 1;
  }

  [[nodiscard]] NodeId source() const noexcept { return source_; }

  [[nodiscard]] bool on_tree(NodeId n) const {
    return role(n) != NodeRole::kOffTree;
  }
  [[nodiscard]] bool is_member(NodeId n) const {
    return role(n) == NodeRole::kMember;
  }
  [[nodiscard]] NodeRole role(NodeId n) const { return state(n).role; }
  [[nodiscard]] NodeId parent(NodeId n) const { return state(n).parent; }
  [[nodiscard]] LinkId parent_link(NodeId n) const {
    return state(n).parent_link;
  }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId n) const {
    return state(n).children;
  }
  [[nodiscard]] int subtree_members(NodeId n) const {
    return state(n).n_members;
  }
  [[nodiscard]] int shr(NodeId n) const {
    const NodeState& s = state(n);
    if (s.role == NodeRole::kOffTree) {
      throw std::invalid_argument("SHR queried for off-tree node");
    }
    return s.shr;
  }
  [[nodiscard]] int member_count() const noexcept { return member_count_; }
  [[nodiscard]] int on_tree_count() const noexcept { return on_tree_count_; }

  [[nodiscard]] std::vector<NodeId> members() const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < graph_->node_count(); ++n) {
      if (is_member(n)) out.push_back(n);
    }
    return out;
  }

  [[nodiscard]] std::vector<LinkId> tree_links() const {
    std::vector<LinkId> out;
    for (NodeId n = 0; n < graph_->node_count(); ++n) {
      if (on_tree(n) && n != source_) out.push_back(state(n).parent_link);
    }
    return out;
  }

  [[nodiscard]] bool is_ancestor_or_self(NodeId ancestor, NodeId n) const {
    if (!on_tree(n) || !on_tree(ancestor)) return false;
    for (NodeId cur = n; cur != kNoNode; cur = state(cur).parent) {
      if (cur == ancestor) return true;
    }
    return false;
  }

  [[nodiscard]] int shr_excluding_subtree(NodeId merge_candidate,
                                          NodeId member) const {
    if (!on_tree(merge_candidate)) {
      throw std::invalid_argument("merge candidate must be on-tree");
    }
    const int moving = subtree_members(member);
    int total = 0;
    for (NodeId cur = merge_candidate; cur != source_;
         cur = state(cur).parent) {
      int contribution = state(cur).n_members;
      if (is_ancestor_or_self(cur, member)) contribution -= moving;
      total += contribution;
    }
    return total;
  }

  [[nodiscard]] std::vector<char> surviving_after_link(
      LinkId failed_link) const {
    std::vector<char> alive(static_cast<std::size_t>(graph_->node_count()),
                            0);
    std::vector<NodeId> stack{source_};
    alive[static_cast<std::size_t>(source_)] = 1;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const NodeId child : state(n).children) {
        if (state(child).parent_link == failed_link) continue;
        alive[static_cast<std::size_t>(child)] = 1;
        stack.push_back(child);
      }
    }
    return alive;
  }

  void graft(NodeId member, const std::vector<NodeId>& path) {
    if (path.empty() || path.front() != member) {
      throw std::invalid_argument(
          "graft path must start at the joining member");
    }
    const NodeId merge = path.back();
    if (!on_tree(merge)) {
      throw std::invalid_argument("graft path must end at an on-tree node");
    }
    if (path.size() == 1) {
      NodeState& s = state(member);
      if (member == source_) {
        throw std::invalid_argument("source cannot join as a member");
      }
      if (s.role == NodeRole::kMember) return;
      s.role = NodeRole::kMember;
      ++member_count_;
      add_member_count_upward(member, +1);
      recompute_shr();
      return;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (on_tree(path[i])) {
        throw std::invalid_argument("graft path crosses the tree early");
      }
      if (!graph_->link_between(path[i], path[i + 1])) {
        throw std::invalid_argument("graft path has non-adjacent hop");
      }
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        if (path[i] == path[j]) {
          throw std::invalid_argument("graft path repeats a node");
        }
      }
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      NodeState& s = state(path[i]);
      s.role = (path[i] == member) ? NodeRole::kMember : NodeRole::kRelay;
      s.parent = path[i + 1];
      s.parent_link = *graph_->link_between(path[i], path[i + 1]);
      s.n_members = 1;
      state(path[i + 1]).children.push_back(path[i]);
      ++on_tree_count_;
    }
    ++member_count_;
    add_member_count_upward(merge, +1);
    recompute_shr();
  }

  void leave(NodeId member) {
    NodeState& s = state(member);
    if (s.role != NodeRole::kMember) {
      throw std::invalid_argument("leave() by a non-member");
    }
    s.role = NodeRole::kRelay;
    --member_count_;
    add_member_count_upward(member, -1);
    prune_upward_from(member);
    recompute_shr();
  }

  void move_subtree(NodeId node, const std::vector<NodeId>& path) {
    if (!on_tree(node) || node == source_) {
      throw std::invalid_argument("can only move an on-tree non-source node");
    }
    if (path.empty() || path.front() != node) {
      throw std::invalid_argument("move path must start at the moving node");
    }
    const NodeId merge = path.back();
    if (!on_tree(merge)) {
      throw std::invalid_argument("move path must end at an on-tree node");
    }
    if (is_ancestor_or_self(node, merge)) {
      throw std::invalid_argument("cannot merge into the moving subtree");
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (on_tree(path[i])) {
        throw std::invalid_argument("move path crosses the tree early");
      }
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!graph_->link_between(path[i], path[i + 1])) {
        throw std::invalid_argument("move path has non-adjacent hop");
      }
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        if (path[i] == path[j]) {
          throw std::invalid_argument("move path repeats a node");
        }
      }
    }

    const int moving_members = state(node).n_members;
    const NodeId old_parent = state(node).parent;
    add_member_count_upward(node, -moving_members);
    state(node).n_members = moving_members;
    detach_from_parent(node);

    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      NodeState& s = state(path[i]);
      if (i > 0) {
        s.role = NodeRole::kRelay;
        ++on_tree_count_;
      }
      s.parent = path[i + 1];
      s.parent_link = *graph_->link_between(path[i], path[i + 1]);
      if (i > 0) s.n_members = moving_members;
      state(path[i + 1]).children.push_back(path[i]);
    }
    add_member_count_upward(merge, +moving_members);

    if (old_parent != kNoNode) prune_upward_from(old_parent);
    recompute_shr();
  }

  std::vector<NodeId> sever(LinkId failed_link) {
    std::vector<NodeId> lost_members;
    NodeId downstream = kNoNode;
    for (NodeId n = 0; n < graph_->node_count(); ++n) {
      if (on_tree(n) && state(n).parent_link == failed_link) {
        downstream = n;
        break;
      }
    }
    if (downstream == kNoNode) return lost_members;

    const NodeId upstream = state(downstream).parent;
    const int dropped_members = state(downstream).n_members;

    std::vector<NodeId> stack{downstream};
    detach_from_parent(downstream);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      NodeState& s = state(n);
      if (s.role == NodeRole::kMember) {
        lost_members.push_back(n);
        --member_count_;
      }
      for (const NodeId child : s.children) stack.push_back(child);
      s = NodeState{};
      --on_tree_count_;
    }

    if (upstream != kNoNode) {
      add_member_count_upward(upstream, -dropped_members);
      prune_upward_from(upstream);
    }
    recompute_shr();
    std::sort(lost_members.begin(), lost_members.end());
    return lost_members;
  }

  std::vector<NodeId> sever_node(NodeId failed_node) {
    std::vector<NodeId> lost_members;
    if (!on_tree(failed_node)) return lost_members;

    const NodeId upstream = state(failed_node).parent;
    const int dropped_members = state(failed_node).n_members;

    std::vector<NodeId> stack{failed_node};
    detach_from_parent(failed_node);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      NodeState& s = state(n);
      if (s.role == NodeRole::kMember) {
        if (n != failed_node) lost_members.push_back(n);
        --member_count_;
      }
      for (const NodeId child : s.children) stack.push_back(child);
      s = NodeState{};
      --on_tree_count_;
    }

    if (failed_node == source_) return lost_members;
    if (upstream != kNoNode) {
      add_member_count_upward(upstream, -dropped_members);
      prune_upward_from(upstream);
    }
    recompute_shr();
    std::sort(lost_members.begin(), lost_members.end());
    return lost_members;
  }

 private:
  struct NodeState {
    NodeRole role = NodeRole::kOffTree;
    NodeId parent = kNoNode;
    LinkId parent_link = kNoLink;
    int n_members = 0;
    int shr = 0;
    std::vector<NodeId> children;
  };

  [[nodiscard]] NodeState& state(NodeId n) {
    if (!graph_->valid_node(n)) throw std::out_of_range("bad node id");
    return nodes_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] const NodeState& state(NodeId n) const {
    if (!graph_->valid_node(n)) throw std::out_of_range("bad node id");
    return nodes_[static_cast<std::size_t>(n)];
  }

  void add_member_count_upward(NodeId from, int delta) {
    for (NodeId cur = from; cur != kNoNode; cur = state(cur).parent) {
      state(cur).n_members += delta;
    }
  }

  void prune_upward_from(NodeId n) {
    NodeId cur = n;
    while (cur != source_ && cur != kNoNode) {
      NodeState& s = state(cur);
      if (s.n_members > 0 || !s.children.empty() ||
          s.role == NodeRole::kMember) {
        break;
      }
      const NodeId up = s.parent;
      detach_from_parent(cur);
      s.role = NodeRole::kOffTree;
      s.n_members = 0;
      s.shr = 0;
      --on_tree_count_;
      cur = up;
    }
  }

  void detach_from_parent(NodeId n) {
    NodeState& s = state(n);
    if (s.parent == kNoNode) return;
    auto& siblings = state(s.parent).children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), n),
                   siblings.end());
    s.parent = kNoNode;
    s.parent_link = kNoLink;
  }

  void recompute_shr() {
    state(source_).shr = 0;
    std::vector<NodeId> stack{source_};
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const NodeId child : state(n).children) {
        state(child).shr = state(n).shr + state(child).n_members;
        stack.push_back(child);
      }
    }
  }

  const Graph* graph_;
  NodeId source_;
  int member_count_ = 0;
  int on_tree_count_ = 0;
  std::vector<NodeState> nodes_;
};

}  // namespace smrp::mcast::testing
