// Unit coverage for the convergence-detection primitives (DESIGN.md §13):
// the quiet-since fold, the per-node latch, and the source-side detector —
// including the retrospective re-detection that catches churn so brief the
// subtree re-quiesced between refresh reports.
#include <gtest/gtest.h>

#include "routing/convergence.hpp"

namespace smrp::routing {
namespace {

TEST(CombineQuietSince, NonQuietPoisonsAndLatestDisturbanceWins) {
  EXPECT_EQ(combine_quiet_since(kNotQuiet, 100.0), kNotQuiet);
  EXPECT_EQ(combine_quiet_since(100.0, kNotQuiet), kNotQuiet);
  EXPECT_EQ(combine_quiet_since(kNotQuiet, kNotQuiet), kNotQuiet);
  // Both quiet: the subtree is only as settled as its latest disturbance.
  EXPECT_EQ(combine_quiet_since(100.0, 250.0), 250.0);
  EXPECT_EQ(combine_quiet_since(250.0, 100.0), 250.0);
  EXPECT_EQ(combine_quiet_since(0.0, 0.0), 0.0);  // t=0 is a valid instant
}

TEST(QuietTracker, LatchesTheStartOfTheCurrentQuietStretch) {
  QuietTracker tracker;
  EXPECT_EQ(tracker.quiet_since(), kNotQuiet);
  EXPECT_EQ(tracker.update(true, 100.0), 100.0);
  // Staying quiet keeps the original latch, not the current time.
  EXPECT_EQ(tracker.update(true, 500.0), 100.0);
  // A disturbance clears it; re-quiescing latches the new instant.
  EXPECT_EQ(tracker.update(false, 600.0), kNotQuiet);
  EXPECT_EQ(tracker.update(true, 700.0), 700.0);
  tracker.reset();
  EXPECT_EQ(tracker.quiet_since(), kNotQuiet);
}

ConvergenceConfig test_config() {
  ConvergenceConfig config;
  config.hold = 150.0;
  return config;
}

TEST(ConvergenceDetector, DeclaresOncePerEpochAfterTheHold) {
  ConvergenceDetector detector(test_config());
  EXPECT_FALSE(detector.converged());
  // Quiet but not yet held long enough.
  EXPECT_FALSE(detector.step(1000.0, 1100.0).has_value());
  EXPECT_FALSE(detector.converged());
  // Hold satisfied: exactly one detection for this epoch.
  const auto first = detector.step(1000.0, 1150.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(first->at, 1150.0);
  EXPECT_EQ(first->quiet_since, 1000.0);
  EXPECT_TRUE(detector.converged());
  EXPECT_FALSE(detector.step(1000.0, 1200.0).has_value());
  EXPECT_EQ(detector.detections(), 1u);
}

TEST(ConvergenceDetector, DisturbanceResetsAndRedetects) {
  ConvergenceDetector detector(test_config());
  ASSERT_TRUE(detector.step(1000.0, 1200.0).has_value());
  // The wave reports activity: converged drops immediately.
  EXPECT_FALSE(detector.step(kNotQuiet, 1300.0).has_value());
  EXPECT_FALSE(detector.converged());
  // Re-quiesced: a second epoch after the hold.
  EXPECT_FALSE(detector.step(1400.0, 1500.0).has_value());
  const auto second = detector.step(1400.0, 1550.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(detector.detections(), 2u);
}

TEST(ConvergenceDetector, QuietSinceJumpRedetectsWithoutAVisibleGap) {
  // Churn so short the subtree re-latched quiet between reports: the
  // source never sees a non-quiet aggregate, but the quiet-since
  // timestamp moving is retrospective proof of the disturbance.
  ConvergenceDetector detector(test_config());
  ASSERT_TRUE(detector.step(1000.0, 1200.0).has_value());
  EXPECT_TRUE(detector.converged());
  // Next report carries a LATER quiet-since (already past the hold).
  const auto redetect = detector.step(2000.0, 2200.0);
  ASSERT_TRUE(redetect.has_value());
  EXPECT_EQ(redetect->epoch, 2u);
  EXPECT_EQ(redetect->quiet_since, 2000.0);
  // Same timestamp again: still the same epoch, no duplicate.
  EXPECT_FALSE(detector.step(2000.0, 2400.0).has_value());
}

TEST(ConvergenceDetector, JumpWithinHoldWaitsForTheHold) {
  ConvergenceDetector detector(test_config());
  ASSERT_TRUE(detector.step(1000.0, 1200.0).has_value());
  // The jump target has not been quiet for the hold yet: converged drops
  // (the tree is provably disturbed) and nothing is declared until the
  // new stretch matures.
  EXPECT_FALSE(detector.step(2000.0, 2050.0).has_value());
  EXPECT_FALSE(detector.converged());
  ASSERT_TRUE(detector.step(2000.0, 2150.0).has_value());
}

TEST(ConvergenceDetectionBound, GrowsWithDepthAndCoversTheTail) {
  const ConvergenceConfig config = test_config();
  const double refresh = 50.0;
  const double shallow = convergence_detection_bound(config, refresh, 1);
  const double deep = convergence_detection_bound(config, refresh, 5);
  EXPECT_GT(deep, shallow);
  // The bound must at least cover a stale-report timeout plus the hold:
  // anything shorter could truncate a detection the soak relies on.
  EXPECT_GE(shallow, config.report_timeout + config.hold);
  // Depth is clamped to >= 1 so degenerate trees still get a real tail.
  EXPECT_EQ(convergence_detection_bound(config, refresh, 0), shallow);
}

}  // namespace
}  // namespace smrp::routing
