#include "routing/link_state.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::routing {
namespace {

struct Stack {
  net::Graph graph;
  sim::Simulator simulator;
  sim::SimNetwork network;
  LinkStateRouting routing;

  explicit Stack(net::Graph g, RoutingConfig config = {})
      : graph(std::move(g)),
        network(simulator, graph),
        routing(simulator, network, config) {
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      network.set_handler(n, [this, n](NodeId from, const sim::Message& m) {
        routing.handle(n, from, m);
      });
    }
  }
};

TEST(LinkStateRouting, BootstrapsConverged) {
  Stack s(testing::grid3x3());
  s.routing.start();
  EXPECT_TRUE(s.routing.converged());
  // Corner to corner in the grid: next hop must be a neighbor on a
  // shortest path.
  const NodeId hop = s.routing.next_hop(0, 8);
  EXPECT_TRUE(hop == 1 || hop == 3);
  EXPECT_EQ(s.routing.next_hop(4, 4), 4);
}

TEST(LinkStateRouting, StaysConvergedWhileQuiescent) {
  Stack s(testing::grid3x3());
  s.routing.start();
  s.simulator.run_until(5000.0);
  EXPECT_TRUE(s.routing.converged());
}

TEST(LinkStateRouting, ReconvergesAfterLinkFailure) {
  Stack s(testing::grid3x3());
  s.routing.start();
  s.simulator.run_until(500.0);
  const net::LinkId cut = s.graph.link_between(0, 1).value();
  s.network.set_link_up(cut, false);
  EXPECT_FALSE(s.routing.converged());  // tables still point over the cut
  s.simulator.run_until(3000.0);
  EXPECT_TRUE(s.routing.converged());
  // 0's route to 1 must now detour via 3.
  EXPECT_EQ(s.routing.next_hop(0, 1), 3);
}

TEST(LinkStateRouting, ConvergenceTakesDetectionPlusFloodTime) {
  RoutingConfig config;
  Stack s(testing::grid3x3(), config);
  s.routing.start();
  s.simulator.run_until(500.0);
  const net::LinkId cut = s.graph.link_between(0, 1).value();
  const sim::Time fail_at = s.simulator.now();
  s.network.set_link_up(cut, false);
  s.simulator.run_until(fail_at + 10000.0);
  ASSERT_TRUE(s.routing.converged());
  const sim::Time took = s.routing.last_table_change() - fail_at;
  // Detection needs at least the dead interval; the whole process must
  // finish well before our run horizon.
  EXPECT_GE(took, config.dead_interval * 0.9);
  EXPECT_LE(took, 4000.0);
}

TEST(LinkStateRouting, ReconvergesAfterNodeFailure) {
  Stack s(testing::grid3x3());
  s.routing.start();
  s.simulator.run_until(500.0);
  s.network.set_node_up(4, false);  // kill the grid centre
  s.simulator.run_until(5000.0);
  EXPECT_TRUE(s.routing.converged());
  // Routes must now go around the perimeter.
  const NodeId hop = s.routing.next_hop(1, 7);
  EXPECT_TRUE(hop == 0 || hop == 2);
}

TEST(LinkStateRouting, HealsAfterLinkRestoration) {
  Stack s(testing::grid3x3());
  s.routing.start();
  s.simulator.run_until(500.0);
  const net::LinkId cut = s.graph.link_between(0, 1).value();
  s.network.set_link_up(cut, false);
  s.simulator.run_until(3000.0);
  ASSERT_TRUE(s.routing.converged());
  s.network.set_link_up(cut, true);
  s.simulator.run_until(6000.0);
  EXPECT_TRUE(s.routing.converged());
  EXPECT_EQ(s.routing.next_hop(0, 1), 1);  // direct again
}

TEST(LinkStateRouting, WorksOnRandomTopologies) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    net::Rng rng(seed);
    net::WaxmanParams wax;
    wax.node_count = 40;
    Stack s(net::waxman_graph(wax, rng));
    s.routing.start();
    s.simulator.run_until(300.0);
    ASSERT_TRUE(s.routing.converged()) << "seed " << seed;
    // Cut the first link on some shortest path and verify reconvergence
    // whenever the graph stays connected.
    const net::LinkId cut = 0;
    if (!s.graph.connected_without(cut)) continue;
    s.network.set_link_up(cut, false);
    s.simulator.run_until(8000.0);
    ASSERT_TRUE(s.routing.converged()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace smrp::routing
