#include "spf/spf_tree_builder.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::baseline {
namespace {

using testing::Fig1Topology;

TEST(SpfTreeBuilder, BuildsShortestPathTree) {
  const Fig1Topology fig;
  SpfTreeBuilder builder(fig.graph, fig.S);
  ASSERT_TRUE(builder.join(fig.C));
  ASSERT_TRUE(builder.join(fig.D));
  EXPECT_EQ(builder.tree().path_to_source(fig.C),
            (std::vector<net::NodeId>{fig.C, fig.A, fig.S}));
  EXPECT_EQ(builder.tree().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.A, fig.S}));
  builder.tree().validate();
}

TEST(SpfTreeBuilder, EveryMemberDelayEqualsSpf) {
  net::Rng rng(5);
  net::WaxmanParams wax;
  wax.node_count = 80;
  const net::Graph g = net::waxman_graph(wax, rng);
  SpfTreeBuilder builder(g, 0);
  for (net::NodeId m = 1; m < 40; ++m) ASSERT_TRUE(builder.join(m));
  builder.tree().validate();
  for (net::NodeId m = 1; m < 40; ++m) {
    EXPECT_DOUBLE_EQ(builder.tree().delay_to_source(m), builder.spf_delay(m))
        << "member " << m;
  }
}

TEST(SpfTreeBuilder, JoinGraftsAtFirstOnTreeRouter) {
  const Fig1Topology fig;
  SpfTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  // D's SPF path is D–A–S; A is already on-tree, so the graft is D–A
  // only and A gains a second child.
  builder.join(fig.D);
  EXPECT_EQ(builder.tree().children(fig.A).size(), 2u);
}

TEST(SpfTreeBuilder, RelayBecomesMemberInPlace) {
  const Fig1Topology fig;
  SpfTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  ASSERT_TRUE(builder.join(fig.A));
  EXPECT_TRUE(builder.tree().is_member(fig.A));
  EXPECT_EQ(builder.tree().member_count(), 2);
}

TEST(SpfTreeBuilder, UnreachableMemberRefused) {
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  SpfTreeBuilder builder(g, 0);
  EXPECT_FALSE(builder.join(2));
}

TEST(SpfTreeBuilder, SourceCannotJoin) {
  const Fig1Topology fig;
  SpfTreeBuilder builder(fig.graph, fig.S);
  EXPECT_THROW(builder.join(fig.S), std::invalid_argument);
}

TEST(SpfTreeBuilder, LeaveAndRejoin) {
  const Fig1Topology fig;
  SpfTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  builder.join(fig.D);
  builder.leave(fig.C);
  builder.tree().validate();
  EXPECT_FALSE(builder.tree().is_member(fig.C));
  ASSERT_TRUE(builder.join(fig.C));
  EXPECT_TRUE(builder.tree().is_member(fig.C));
}

TEST(SpfTreeBuilder, UnionOfPathsIsAlwaysATree) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    net::Rng rng(seed);
    net::WaxmanParams wax;
    wax.node_count = 60;
    const net::Graph g = net::waxman_graph(wax, rng);
    SpfTreeBuilder builder(g, 0);
    for (int i = 0; i < 30; ++i) {
      builder.join(static_cast<net::NodeId>(1 + rng.below(59)));
      ASSERT_NO_THROW(builder.tree().validate());
    }
  }
}

}  // namespace
}  // namespace smrp::baseline
