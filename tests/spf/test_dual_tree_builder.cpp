#include "spf/dual_tree_builder.hpp"

#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "testing_topologies.hpp"

namespace smrp::baseline {
namespace {

using testing::Fig1Topology;

TEST(DualTreeBuilder, BlueIsSpfRedIsDisjoint) {
  const Fig1Topology fig;
  DualTreeBuilder dual(fig.graph, fig.S);
  ASSERT_TRUE(dual.join(fig.D));
  EXPECT_EQ(dual.blue().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.A, fig.S}));
  EXPECT_EQ(dual.red().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
  EXPECT_TRUE(dual.is_protected(fig.D));
  dual.blue().validate();
  dual.red().validate();
}

TEST(DualTreeBuilder, ProtectedMemberSurvivesAnySingleCut) {
  const Fig1Topology fig;
  DualTreeBuilder dual(fig.graph, fig.S);
  dual.join(fig.D);
  for (net::LinkId l = 0; l < fig.graph.link_count(); ++l) {
    EXPECT_TRUE(dual.survives_link(fig.D, l)) << "link " << l;
  }
}

TEST(DualTreeBuilder, UnprotectedOnBridgeTopology) {
  // Chain 0–1–2: no disjoint alternative exists.
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  const net::LinkId bridge = g.add_link(1, 2, 1.0);
  DualTreeBuilder dual(g, 0);
  ASSERT_TRUE(dual.join(2));
  EXPECT_FALSE(dual.is_protected(2));
  EXPECT_FALSE(dual.survives_link(2, bridge));
}

TEST(DualTreeBuilder, CombinedCostAboveSingleTree) {
  net::Rng rng(5);
  net::WaxmanParams wax;
  wax.node_count = 60;
  const net::Graph g = net::waxman_graph(wax, rng);
  DualTreeBuilder dual(g, 0);
  for (int i = 0; i < 20; ++i) {
    dual.join(static_cast<net::NodeId>(1 + rng.below(59)));
  }
  EXPECT_GT(dual.combined_cost(), dual.blue().total_cost());
  EXPECT_DOUBLE_EQ(dual.combined_cost(),
                   dual.blue().total_cost() + dual.red().total_cost());
}

TEST(DualTreeBuilder, ProtectedMembersHaveDisjointPaths) {
  net::Rng rng(6);
  net::WaxmanParams wax;
  wax.node_count = 60;
  const net::Graph g = net::waxman_graph(wax, rng);
  DualTreeBuilder dual(g, 0);
  std::vector<net::NodeId> members;
  for (int i = 0; i < 20; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(59));
    if (dual.join(m)) members.push_back(m);
  }
  dual.blue().validate();
  dual.red().validate();
  for (const net::NodeId m : members) {
    if (!dual.is_protected(m)) continue;
    // A protected member's realised blue and red tree paths share no
    // link, and therefore the member survives ANY single link failure.
    const auto blue_links =
        net::path_links(g, dual.blue().path_to_source(m));
    const auto red_links = net::path_links(g, dual.red().path_to_source(m));
    for (const net::LinkId bl : blue_links) {
      for (const net::LinkId rl : red_links) {
        ASSERT_NE(bl, rl) << "member " << m << " shares link " << bl;
      }
    }
    for (net::LinkId l = 0; l < g.link_count(); ++l) {
      ASSERT_TRUE(dual.survives_link(m, l)) << "member " << m << " link " << l;
    }
  }
}

TEST(DualTreeBuilder, SourceCannotJoin) {
  const Fig1Topology fig;
  DualTreeBuilder dual(fig.graph, fig.S);
  EXPECT_THROW(dual.join(fig.S), std::invalid_argument);
}

TEST(DualTreeBuilder, SurvivesLinkRequiresMembership) {
  const Fig1Topology fig;
  DualTreeBuilder dual(fig.graph, fig.S);
  EXPECT_THROW(static_cast<void>(dual.survives_link(fig.D, fig.AD)),
               std::invalid_argument);
}

}  // namespace
}  // namespace smrp::baseline
