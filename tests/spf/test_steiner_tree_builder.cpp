#include "spf/steiner_tree_builder.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "spf/spf_tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::baseline {
namespace {

using testing::Fig1Topology;

TEST(SteinerTreeBuilder, FirstJoinConnectsToSource) {
  const Fig1Topology fig;
  SteinerTreeBuilder builder(fig.graph, fig.S);
  ASSERT_TRUE(builder.join(fig.C));
  EXPECT_EQ(builder.tree().path_to_source(fig.C),
            (std::vector<net::NodeId>{fig.C, fig.A, fig.S}));
}

TEST(SteinerTreeBuilder, LaterJoinGraftsToNearestTreePoint) {
  const Fig1Topology fig;
  SteinerTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  // D's nearest tree point is A (distance 1), closer than S via B (3) or
  // C (2); the Steiner graft therefore shares A.
  builder.join(fig.D);
  EXPECT_EQ(builder.tree().parent(fig.D), fig.A);
  builder.tree().validate();
}

TEST(SteinerTreeBuilder, CostNeverAboveSpfTree) {
  // The greedy Steiner heuristic connects each member by its cheapest
  // graft, so the resulting tree never costs more than the SPF tree built
  // over the same join sequence.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    net::Rng rng(seed);
    net::WaxmanParams wax;
    wax.node_count = 70;
    const net::Graph g = net::waxman_graph(wax, rng);
    SteinerTreeBuilder steiner(g, 0);
    SpfTreeBuilder spf(g, 0);
    for (int i = 0; i < 25; ++i) {
      const auto m = static_cast<net::NodeId>(1 + rng.below(69));
      steiner.join(m);
      spf.join(m);
    }
    steiner.tree().validate();
    EXPECT_LE(steiner.tree().total_cost(), spf.tree().total_cost() + 1e-9)
        << "seed " << seed;
  }
}

TEST(SteinerTreeBuilder, DelaysAtLeastSpf) {
  net::Rng rng(9);
  net::WaxmanParams wax;
  wax.node_count = 70;
  const net::Graph g = net::waxman_graph(wax, rng);
  const net::ShortestPathTree spf = net::dijkstra(g, 0);
  SteinerTreeBuilder builder(g, 0);
  for (int i = 0; i < 25; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(69)));
  }
  for (const net::NodeId m : builder.tree().members()) {
    EXPECT_GE(builder.tree().delay_to_source(m) + 1e-9,
              spf.dist[static_cast<std::size_t>(m)]);
  }
}

TEST(SteinerTreeBuilder, LeaveAndRejoin) {
  const Fig1Topology fig;
  SteinerTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  builder.join(fig.D);
  builder.leave(fig.C);
  builder.tree().validate();
  EXPECT_FALSE(builder.tree().is_member(fig.C));
  ASSERT_TRUE(builder.join(fig.C));
  builder.tree().validate();
}

TEST(SteinerTreeBuilder, SourceCannotJoin) {
  const Fig1Topology fig;
  SteinerTreeBuilder builder(fig.graph, fig.S);
  EXPECT_THROW(builder.join(fig.S), std::invalid_argument);
}

TEST(SteinerTreeBuilder, UnreachableMemberRefused) {
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  SteinerTreeBuilder builder(g, 0);
  EXPECT_FALSE(builder.join(2));
}

}  // namespace
}  // namespace smrp::baseline
