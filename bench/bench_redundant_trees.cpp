// Related-work comparison (paper §2, Médard et al. [16]): preplanned
// redundant trees give *instant* recovery — the member just switches to
// its protection path — but pay for two trees up front. SMRP instead
// pays a small reactive recovery distance on a single, slightly
// more expensive tree. This bench quantifies that trade-off.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/dual_tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

int main() {
  using namespace smrp;
  bench::banner("redundant-trees",
                "SMRP vs preplanned dual trees (Medard-style) vs plain SPF "
                "(N=100, N_G=30, alpha=0.2, 20 scenarios)",
                bench::kDefaultSeed);

  net::Rng root(bench::kDefaultSeed);
  eval::RunningStats spf_cost, smrp_cost, dual_cost;
  eval::RunningStats smrp_rd;
  eval::RunningStats dual_protected;   // fraction of members protected
  eval::RunningStats dual_survive;     // fraction surviving worst-case cut
  eval::RunningStats smrp_delay, dual_delay, spf_delay;

  for (int s = 0; s < 20; ++s) {
    net::Rng rng = root.fork();
    net::WaxmanParams wax;
    wax.node_count = 100;
    const net::Graph g = net::waxman_graph(wax, rng);
    const net::NodeId source = 0;

    baseline::SpfTreeBuilder spf(g, source);
    baseline::DualTreeBuilder dual(g, source);
    proto::SmrpTreeBuilder smrp(g, source);

    std::vector<net::NodeId> members;
    while (members.size() < 30) {
      const auto m = static_cast<net::NodeId>(1 + rng.below(99));
      if (std::find(members.begin(), members.end(), m) != members.end()) {
        continue;
      }
      members.push_back(m);
      spf.join(m);
      dual.join(m);
      smrp.join(m);
    }

    spf_cost.add(spf.tree().total_cost());
    smrp_cost.add(smrp.tree().total_cost());
    dual_cost.add(dual.combined_cost());

    int protected_count = 0;
    int survived = 0;
    double rd_sum = 0.0;
    int rd_count = 0;
    for (const net::NodeId m : members) {
      spf_delay.add(spf.tree().delay_to_source(m));
      smrp_delay.add(smrp.tree().delay_to_source(m));
      dual_delay.add(dual.blue().delay_to_source(m));
      if (dual.is_protected(m)) ++protected_count;
      // Worst case on each protocol's own working tree.
      const net::LinkId dual_cut =
          proto::worst_case_failure_link(dual.blue(), m);
      if (dual.survives_link(m, dual_cut)) ++survived;
      const net::LinkId smrp_cut =
          proto::worst_case_failure_link(smrp.tree(), m);
      const auto rec =
          proto::local_detour_recovery(g, smrp.tree(), m, smrp_cut);
      if (rec.recovered) {
        rd_sum += rec.recovery_distance;
        ++rd_count;
      }
    }
    dual_protected.add(static_cast<double>(protected_count) / members.size());
    dual_survive.add(static_cast<double>(survived) / members.size());
    if (rd_count > 0) smrp_rd.add(rd_sum / rd_count);
  }

  eval::Table table({"scheme", "resource cost (rel. SPF)", "mean delay "
                     "(rel. SPF)", "worst-case cut outcome"});
  const double spf_c = spf_cost.summary().mean;
  const double spf_d = spf_delay.summary().mean;
  table.add_row({"plain SPF (PIM)", "1.00x", "1.00x",
                 "global detour after reconvergence"});
  table.add_row(
      {"SMRP",
       eval::Table::fixed(smrp_cost.summary().mean / spf_c, 2) + "x",
       eval::Table::fixed(smrp_delay.summary().mean / spf_d, 2) + "x",
       "local detour, mean RD " +
           eval::Table::fixed(smrp_rd.summary().mean, 1)});
  table.add_row(
      {"dual trees (Medard-style)",
       eval::Table::fixed(dual_cost.summary().mean / spf_c, 2) + "x",
       eval::Table::fixed(dual_delay.summary().mean / spf_d, 2) + "x",
       "instant switch; " +
           eval::Table::percent(dual_survive.summary().mean) +
           " survive (" +
           eval::Table::percent(dual_protected.summary().mean) +
           " fully protected)"});
  std::cout << table.render()
            << "\nexpected: dual trees buy instant recovery with ~2x "
               "resources; SMRP buys short reactive detours with a few "
               "percent extra; plain SPF pays at failure time.\n\n";
  return 0;
}
