// Related-work comparison (paper §2, Médard et al. [16]): preplanned
// redundant trees give *instant* recovery — the member just switches to
// its protection path — but pay for two trees up front. SMRP instead
// pays a small reactive recovery distance on a single, slightly
// more expensive tree. This bench quantifies that trade-off.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/dual_tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "redundant-trees",
                       "SMRP vs preplanned dual trees (Medard-style) vs "
                       "plain SPF (N=100, N_G=30, alpha=0.2)",
                       /*default_trials=*/20);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        net::Rng rng(ctx.seed);
        net::WaxmanParams wax;
        wax.node_count = 100;
        const net::Graph g = net::waxman_graph(wax, rng);
        const net::NodeId source = 0;

        baseline::SpfTreeBuilder spf(g, source);
        baseline::DualTreeBuilder dual(g, source);
        proto::SmrpTreeBuilder smrp(g, source);

        std::vector<net::NodeId> members;
        while (members.size() < 30) {
          const auto m = static_cast<net::NodeId>(1 + rng.below(99));
          if (std::find(members.begin(), members.end(), m) !=
              members.end()) {
            continue;
          }
          members.push_back(m);
          spf.join(m);
          dual.join(m);
          smrp.join(m);
        }

        auto& rec = ctx.recorder;
        rec.add("spf/cost", spf.tree().total_cost());
        rec.add("smrp/cost", smrp.tree().total_cost());
        rec.add("dual/cost", dual.combined_cost());

        net::RoutingOracle oracle(g);
        int protected_count = 0;
        int survived = 0;
        double rd_sum = 0.0;
        int rd_count = 0;
        for (const net::NodeId m : members) {
          rec.add("spf/delay", spf.tree().delay_to_source(m));
          rec.add("smrp/delay", smrp.tree().delay_to_source(m));
          rec.add("dual/delay", dual.blue().delay_to_source(m));
          if (dual.is_protected(m)) ++protected_count;
          // Worst case on each protocol's own working tree.
          const net::LinkId dual_cut =
              proto::worst_case_failure_link(dual.blue(), m);
          if (dual.survives_link(m, dual_cut)) ++survived;
          const net::LinkId smrp_cut =
              proto::worst_case_failure_link(smrp.tree(), m);
          const auto out = proto::local_detour_recovery(
              g, smrp.tree(), m, proto::Failure::of_link(smrp_cut),
              &oracle);
          if (out.recovered) {
            rd_sum += out.recovery_distance;
            ++rd_count;
          }
        }
        rec.add("dual/protected",
                static_cast<double>(protected_count) / members.size());
        rec.add("dual/survive",
                static_cast<double>(survived) / members.size());
        if (rd_count > 0) rec.add("smrp/rd", rd_sum / rd_count);
      });

  eval::Table table({"scheme", "resource cost (rel. SPF)", "mean delay "
                     "(rel. SPF)", "worst-case cut outcome"});
  const double spf_c = res.summary("spf/cost").mean;
  const double spf_d = res.summary("spf/delay").mean;
  table.add_row({"plain SPF (PIM)", "1.00x", "1.00x",
                 "global detour after reconvergence"});
  table.add_row(
      {"SMRP",
       eval::Table::fixed(res.summary("smrp/cost").mean / spf_c, 2) + "x",
       eval::Table::fixed(res.summary("smrp/delay").mean / spf_d, 2) + "x",
       "local detour, mean RD " +
           eval::Table::fixed(res.summary("smrp/rd").mean, 1)});
  table.add_row(
      {"dual trees (Medard-style)",
       eval::Table::fixed(res.summary("dual/cost").mean / spf_c, 2) + "x",
       eval::Table::fixed(res.summary("dual/delay").mean / spf_d, 2) + "x",
       "instant switch; " +
           eval::Table::percent(res.summary("dual/survive").mean) +
           " survive (" +
           eval::Table::percent(res.summary("dual/protected").mean) +
           " fully protected)"});
  std::cout << table.render()
            << "\nexpected: dual trees buy instant recovery with ~2x "
               "resources; SMRP buys short reactive detours with a few "
               "percent extra; plain SPF pays at failure time.\n\n";
  return 0;
}
