// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdint>
#include <iostream>
#include <string_view>

namespace smrp::bench {

/// Every bench announces what it reproduces and under which seed, so a run
/// is self-describing and replayable.
inline void banner(std::string_view experiment_id, std::string_view title,
                   std::uint64_t seed) {
  std::cout << "==================================================================\n"
            << experiment_id << ": " << title << "\n"
            << "seed=" << seed << "\n"
            << "==================================================================\n";
}

inline constexpr std::uint64_t kDefaultSeed = 20050628;  // DSN 2005 week

}  // namespace smrp::bench
