// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/jsonl.hpp"

namespace smrp::bench {

/// Every bench announces what it reproduces and under which seed, so a run
/// is self-describing and replayable.
inline void banner(std::string_view experiment_id, std::string_view title,
                   std::uint64_t seed) {
  std::cout << "==================================================================\n"
            << experiment_id << ": " << title << "\n"
            << "seed=" << seed << "\n"
            << "==================================================================\n";
}

inline constexpr std::uint64_t kDefaultSeed = 20050628;  // DSN 2005 week

/// JSONL telemetry export for bench binaries, driven by the one flag the
/// benches accept: `--telemetry <path>`. Inactive (every call a no-op)
/// when the flag is absent, so instrumented benches run unchanged by
/// default. Each instrumented run appends its own snapshot section
/// (delimited by a `meta` line) to the same file; tools/trace_report
/// renders them per run label.
class TelemetryExport {
 public:
  /// Parse argv; throws std::invalid_argument on an unknown flag or a
  /// missing path so typos fail loudly instead of silently benchmarking.
  static TelemetryExport from_args(int argc, char** argv) {
    TelemetryExport out;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--telemetry") {
        if (i + 1 >= argc) {
          throw std::invalid_argument("--telemetry needs a file path");
        }
        out.open(argv[++i]);
      } else {
        throw std::invalid_argument("unknown argument: " + std::string(arg));
      }
    }
    return out;
  }

  [[nodiscard]] bool active() const noexcept { return sink_ != nullptr; }

  /// Append one run's snapshot section. Closes still-open spans as
  /// kUnclosed first (the run is over; anything open is a finding).
  void add(obs::Telemetry& telemetry, double now, std::string_view run_label) {
    if (sink_ == nullptr) return;
    telemetry.finish(now);
    sink_->write_snapshot(telemetry, now, run_label);
    if (!*out_) {
      throw std::runtime_error("failed writing telemetry output: " + path_);
    }
  }

 private:
  void open(std::string path) {
    path_ = std::move(path);
    out_ = std::make_unique<std::ofstream>(path_, std::ios::trunc);
    if (!*out_) {
      throw std::runtime_error("cannot open telemetry output: " + path_);
    }
    sink_ = std::make_unique<obs::JsonlSink>(*out_);
  }

  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  std::unique_ptr<obs::JsonlSink> sink_;
};

}  // namespace smrp::bench
