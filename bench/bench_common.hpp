// Shared harness for the figure-reproduction bench binaries.
//
// Every bench is expressed as N independent seeded trials run through the
// deterministic parallel engine (src/eval/engine.hpp, DESIGN.md §9).
// bench::Runner owns the flag surface all the binaries share:
//
//   --trials N        trial count (each bench has its own default)
//   --seed S          root seed (default kDefaultSeed)
//   --threads T       worker count (0 = hardware concurrency); the output
//                     is byte-identical for any T at a fixed seed
//   --shards K        within-trial DES shard count (default 1); det_*
//                     series are byte-identical for any K
//   --json PATH       write the machine-readable BENCH_<experiment>.json
//   --telemetry PATH  JSONL snapshot export (unchanged trace schema)
//   --sample-period M periodic gauge sampling every M ms of sim time in
//                     the exported telemetry (requires --telemetry)
//
// Flag owners parse their own flags (TelemetryExport::try_parse_flag);
// the Runner alone rejects what nobody claimed, so adding a flag to one
// owner cannot break another owner's parsing.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "eval/engine.hpp"
#include "obs/jsonl.hpp"

namespace smrp::bench {

/// Every bench announces what it reproduces and under which seed, so a run
/// is self-describing and replayable.
inline void banner(std::string_view experiment_id, std::string_view title,
                   std::uint64_t seed) {
  std::cout << "==================================================================\n"
            << experiment_id << ": " << title << "\n"
            << "seed=" << seed << "\n"
            << "==================================================================\n";
}

inline constexpr std::uint64_t kDefaultSeed = 20050628;  // DSN 2005 week

/// JSONL telemetry export for bench binaries. Inactive (every call a
/// no-op) when `--telemetry` was absent, so instrumented benches run
/// unchanged by default. Each instrumented run appends its own snapshot
/// section (delimited by a `meta` line) to the same file;
/// tools/trace_report renders them per run label.
class TelemetryExport {
 public:
  /// Per-flag parser for a shared argv loop: when argv[i] is
  /// `--telemetry`, consume it and its path argument (advancing i) and
  /// return true; return false for any flag this exporter does not own.
  /// Unknown-flag rejection is the caller's job (bench::Runner), not
  /// this owner's — flag owners must compose.
  bool try_parse_flag(int argc, char** argv, int& i) {
    if (std::string_view(argv[i]) != "--telemetry") return false;
    if (i + 1 >= argc) {
      throw std::invalid_argument("--telemetry needs a file path");
    }
    open(argv[++i]);
    return true;
  }

  [[nodiscard]] bool active() const noexcept { return sink_ != nullptr; }

  /// Append one run's snapshot section. Closes still-open spans as
  /// kTruncated first (the run is over; anything open is a finding).
  void add(obs::Telemetry& telemetry, double now, std::string_view run_label) {
    if (sink_ == nullptr) return;
    telemetry.finish(now);
    sink_->write_snapshot(telemetry, now, run_label);
    if (!*out_) {
      throw std::runtime_error("failed writing telemetry output: " + path_);
    }
  }

 private:
  void open(std::string path) {
    path_ = std::move(path);
    out_ = std::make_unique<std::ofstream>(path_, std::ios::trunc);
    if (!*out_) {
      throw std::runtime_error("cannot open telemetry output: " + path_);
    }
    sink_ = std::make_unique<obs::JsonlSink>(*out_);
  }

  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  std::unique_ptr<obs::JsonlSink> sink_;
};

/// The shared bench driver: parses the common flags, runs the trial body
/// through the parallel engine, flushes buffered telemetry in trial
/// order, and emits the BENCH_<experiment>.json report when asked.
///
///   bench::Runner runner(argc, argv, "fig8", "Effect of D_thresh", 100);
///   runner.config().set("node_count", 100);
///   const eval::EngineResult& r = runner.run([&](eval::TrialContext& ctx) {
///     net::Rng rng(ctx.seed);
///     ...
///     ctx.recorder.add("rd_rel_weight", value);
///   });
///   // render human tables from r / runner.summary("rd_rel_weight")
class Runner {
 public:
  Runner(int argc, char** argv, std::string experiment, std::string title,
         int default_trials)
      : experiment_(std::move(experiment)),
        title_(std::move(title)),
        program_(argc > 0 ? argv[0] : "bench") {
    options_.seed = kDefaultSeed;
    options_.trials = default_trials;
    parse(argc, argv);
    banner(experiment_, title_, options_.seed);
  }

  [[nodiscard]] eval::EngineOptions& options() noexcept { return options_; }
  [[nodiscard]] eval::BenchConfig& config() noexcept { return config_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return options_.seed; }
  [[nodiscard]] int trials() const noexcept { return options_.trials; }
  [[nodiscard]] bool telemetry_active() const noexcept {
    return telemetry_.active();
  }

  /// Run the trials and post-process: telemetry flush (trial order, so
  /// the trace file is thread-count independent too), JSON report,
  /// timing footer. Returns the merged result, also kept on the Runner.
  const eval::EngineResult& run(
      const std::function<void(eval::TrialContext&)>& body) {
    options_.collect_telemetry = telemetry_.active();
    result_ = eval::run_trials(options_, body);

    for (eval::TelemetrySnapshot& snap : result_.telemetry) {
      telemetry_.add(*snap.telemetry, snap.now, snap.label);
    }
    if (!json_path_.empty()) {
      std::ofstream out(json_path_, std::ios::trunc);
      if (!out) {
        throw std::runtime_error("cannot open JSON output: " + json_path_);
      }
      eval::write_bench_json(out, experiment_, title_, config_, result_);
      if (!out) {
        throw std::runtime_error("failed writing JSON output: " + json_path_);
      }
      std::cout << "[engine] wrote " << json_path_ << "\n";
    }
    const double secs = result_.wall_ms / 1000.0;
    std::cout << "[engine] trials=" << result_.trials
              << " threads=" << result_.threads
              << " wall_ms=" << result_.wall_ms
              << (secs > 0.0
                      ? " trials_per_sec=" +
                            std::to_string(result_.trials / secs)
                      : std::string{})
              << "\n";
    return result_;
  }

  [[nodiscard]] const eval::EngineResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] eval::Summary summary(std::string_view series) const {
    return result_.summary(series);
  }

 private:
  void parse(int argc, char** argv) {
    try {
      for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (telemetry_.try_parse_flag(argc, argv, i)) continue;
        if (arg == "--trials") {
          options_.trials = static_cast<int>(int_value(argc, argv, i));
          if (options_.trials < 1) {
            throw std::invalid_argument("--trials needs a positive integer");
          }
        } else if (arg == "--seed") {
          options_.seed = int_value(argc, argv, i);
        } else if (arg == "--threads") {
          options_.threads = static_cast<int>(int_value(argc, argv, i));
        } else if (arg == "--shards") {
          options_.shards = static_cast<int>(int_value(argc, argv, i));
          if (options_.shards < 1) {
            throw std::invalid_argument("--shards needs a positive integer");
          }
        } else if (arg == "--json") {
          if (i + 1 >= argc) {
            throw std::invalid_argument("--json needs a file path");
          }
          json_path_ = argv[++i];
        } else if (arg == "--sample-period") {
          options_.sample_period =
              static_cast<double>(int_value(argc, argv, i));
          if (options_.sample_period <= 0.0) {
            throw std::invalid_argument(
                "--sample-period needs a positive integer (ms)");
          }
        } else if (arg == "--help" || arg == "-h") {
          usage(std::cout);
          std::exit(0);
        } else {
          throw std::invalid_argument("unknown argument: " + std::string(arg));
        }
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << program_ << ": " << e.what() << "\n";
      usage(std::cerr);
      std::exit(2);
    }
  }

  std::uint64_t int_value(int argc, char** argv, int& i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    const char* text = argv[++i];
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
      throw std::invalid_argument(flag + " needs an integer, got '" +
                                  std::string(text) + "'");
    }
    return static_cast<std::uint64_t>(v);
  }

  void usage(std::ostream& out) const {
    out << "usage: " << program_
        << " [--trials N] [--seed S] [--threads T]"
           " [--json PATH] [--telemetry PATH]\n"
           "  --trials N        trials to run (default "
        << options_.trials << " for this bench)\n"
           "  --seed S          root seed (default " << kDefaultSeed << ")\n"
           "  --threads T       worker threads, 0 = hardware concurrency;\n"
           "                    results are identical for any T\n"
           "  --shards K        within-trial DES shards (default 1); det_*\n"
           "                    series are identical for any K\n"
           "  --json PATH       write machine-readable results (schema "
        << eval::kBenchJsonSchema << ")\n"
           "  --telemetry PATH  write JSONL trace snapshots\n"
           "  --sample-period M sample gauges every M ms of sim time into\n"
           "                    the telemetry trace (needs --telemetry)\n";
  }

  std::string experiment_;
  std::string title_;
  std::string program_;
  eval::EngineOptions options_;
  eval::BenchConfig config_;
  TelemetryExport telemetry_;
  std::string json_path_;
  eval::EngineResult result_;
};

}  // namespace smrp::bench
