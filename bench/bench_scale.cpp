// Multi-session scale sweep: how far one topology + one shared
// RoutingOracle stretch as nodes × sessions × members grow.
//
// Each tier generates a transit-stub topology, then drives N concurrent
// sessions through eval::MultiSessionDriver::run_seeded — Zipf session
// sizes, Poisson join/leave churn, sources drawn from the transit core so
// sessions share the oracle's SPF snapshots, and session i's entire
// random stream derived from trial_seed(tier seed, i) so the deterministic
// aggregates are byte-identical for any --shards value. The small/medium
// tiers run the full SMRP path-selection engine; the large tiers (100k
// nodes, and the million-member scale1m point) use the SPF baseline
// engine, whose O(path) joins make session count — not per-join search —
// the measured variable. EXPERIMENTS.md records the tier rationale.
//
// Per tier the bench emits three kinds of series:
//   <tier>/det_*        bit-deterministic at a fixed seed for ANY shard
//                       count (members, links, joins) — CI regression-
//                       gates these exactly via bench_diff --series
//                       '*/det_*', including a shards=1 vs shards=4 diff;
//   <tier>/oracle_hit_pct, <tier>/oracle_full_runs
//                       the lookup total is deterministic for any shard
//                       count (the workers share ONE lock-striped oracle,
//                       DESIGN.md §16), but the hit/full-run split can
//                       move with thread scheduling, so these are
//                       reported rather than exactly gated. full_runs is
//                       the dedup headline: concurrent misses on one key
//                       compute once, so it is bounded by the distinct
//                       (source, exclusion) keys — not by K × keys as
//                       the old per-worker-private caches were;
//   <tier>/joins_per_sec, <tier>/wall_s, <tier>/peak_rss_mb,
//   <tier>/shard_gain   machine-dependent throughput / footprint.
//                       shard_gain (only with --shards > 1) is the
//                       sequential wall over the sharded wall for the
//                       same tier — the within-trial parallel payoff.
//                       peak_rss is the process VmHWM after the tier's
//                       sessions are built and still resident, so it is
//                       monotone across tiers (tiers run smallest-first);
//                       where getrusage cannot report it the series is
//                       omitted with a warning instead of recording 0.
//
// `--smoke` swaps in reduced tiers for CI; the committed
// BENCH_scale-smoke.json is regenerated and diffed there, while
// BENCH_scale.json archives a full-profile run.
#include <chrono>
#include <iostream>
#include <optional>
#include <string_view>
#include <sys/resource.h>
#include <vector>

#include "bench_common.hpp"
#include "eval/multi_session.hpp"
#include "eval/table.hpp"
#include "net/transit_stub.hpp"

namespace {

using namespace smrp;

/// Process peak RSS in MiB (ru_maxrss is KiB on Linux), or nullopt when
/// the platform reports nothing usable (some kernels/sandboxes leave
/// ru_maxrss at 0, and a recorded 0 would read as "tier fit in zero
/// memory" in the committed baselines). Monotone when available: reads
/// the high-water mark, not the current footprint.
std::optional<double> peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0 || usage.ru_maxrss <= 0) {
    return std::nullopt;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Tier {
  const char* name;
  net::TransitStubParams topo;
  eval::MultiSessionParams sessions;
  int source_pool_cap;  ///< transit-core nodes used as session sources
};

net::TransitStubParams transit_stub(int transit, int stubs_per, int stub) {
  net::TransitStubParams p;
  p.transit_nodes = transit;
  p.stubs_per_transit = stubs_per;
  p.stub_size = stub;
  return p;
}

eval::MultiSessionParams session_load(int sessions, int min_size,
                                      int max_size, double churn,
                                      eval::SessionEngine engine,
                                      double zipf_exponent = 1.0) {
  eval::MultiSessionParams p;
  p.sessions = sessions;
  p.min_session_size = min_size;
  p.max_session_size = max_size;
  p.churn_events_per_session = churn;
  p.engine = engine;
  p.zipf_exponent = zipf_exponent;
  return p;
}

/// Full profile: the committed BENCH_scale.json. scale100k is the PR 8
/// acceptance point (100,000 nodes × 1,000 sessions); scale1m is the
/// million-member aggregate tier — same 100k-node topology, 2,200
/// sessions with a flatter Zipf over [16, 3000] so Σ members lands past
/// 1e6 (mean size ≈ 500).
std::vector<Tier> full_tiers() {
  return {
      {"scale1k", transit_stub(20, 5, 10),
       session_load(50, 2, 64, 4.0, eval::SessionEngine::kSmrp), 16},
      {"scale10k", transit_stub(40, 8, 31),
       session_load(150, 2, 96, 4.0, eval::SessionEngine::kSmrp), 32},
      {"scale100k", transit_stub(100, 9, 111),
       session_load(1000, 4, 2000, 2.0, eval::SessionEngine::kSpf), 64},
      {"scale1m", transit_stub(100, 9, 111),
       session_load(2200, 16, 3000, 1.0, eval::SessionEngine::kSpf, 0.8), 64},
  };
}

/// CI profile: same shape, runner-sized (~100 and ~500 nodes).
std::vector<Tier> smoke_tiers() {
  return {
      {"scale1k", transit_stub(8, 3, 4),
       session_load(12, 2, 16, 3.0, eval::SessionEngine::kSmrp), 4},
      {"scale10k", transit_stub(12, 4, 10),
       session_load(30, 2, 32, 3.0, eval::SessionEngine::kSmrp), 8},
      {"scale100k", transit_stub(16, 5, 12),
       session_load(60, 2, 64, 2.0, eval::SessionEngine::kSpf), 8},
      {"scale1m", transit_stub(16, 5, 12),
       session_load(90, 4, 96, 1.0, eval::SessionEngine::kSpf, 0.8), 8},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;

  // This binary owns --smoke; strip it before the Runner sees argv so the
  // shared flag surface stays intact.
  bool smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }

  bench::Runner runner(static_cast<int>(args.size()), args.data(),
                       smoke ? "scale-smoke" : "scale",
                       "Multi-session capacity: nodes x sessions x members "
                       "over one shared routing oracle",
                       /*default_trials=*/1);
  const std::vector<Tier> tiers = smoke ? smoke_tiers() : full_tiers();
  runner.config().set("shards", runner.options().shards);
  for (const Tier& tier : tiers) {
    const int nodes = tier.topo.transit_nodes +
                      tier.topo.transit_nodes * tier.topo.stubs_per_transit *
                          tier.topo.stub_size;
    runner.config().set(std::string(tier.name) + "_nodes", nodes);
    runner.config().set(std::string(tier.name) + "_sessions",
                        tier.sessions.sessions);
    runner.config().set(std::string(tier.name) + "_max_session_size",
                        tier.sessions.max_session_size);
  }

  bool warned_rss = false;
  const eval::EngineResult& res = runner.run([&](eval::TrialContext& ctx) {
    net::Rng rng(ctx.seed);
    int tier_index = 0;
    for (const Tier& tier : tiers) {
      const std::string prefix = tier.name;
      // One session-stream seed per tier, independent of the topology
      // stream so adding tiers never perturbs earlier ones.
      const std::uint64_t tier_seed =
          eval::trial_seed(ctx.seed, 1000 + tier_index++);
      const net::TransitStubTopology topo =
          net::generate_transit_stub(tier.topo, rng);

      // Sources: the first `source_pool_cap` transit-core routers. Every
      // session shares this pool, which is what makes the oracle's
      // per-source snapshots communal.
      std::vector<net::NodeId> pool(
          topo.nodes_of_domain[net::kTransitDomain].begin(),
          topo.nodes_of_domain[net::kTransitDomain].begin() +
              std::min<std::ptrdiff_t>(
                  tier.source_pool_cap,
                  static_cast<std::ptrdiff_t>(
                      topo.nodes_of_domain[net::kTransitDomain].size())));

      // The sequential reference for shard_gain: same tier, same seed,
      // one shard. Only run when sharding is on — it doubles tier cost.
      double seq_secs = 0.0;
      if (ctx.shards > 1) {
        eval::MultiSessionParams seq_params = tier.sessions;
        seq_params.shards = 1;
        eval::MultiSessionDriver seq_driver(topo.graph, seq_params);
        const auto s0 = std::chrono::steady_clock::now();
        const eval::MultiSessionReport seq_report =
            seq_driver.run_seeded(tier_seed, pool);
        const auto s1 = std::chrono::steady_clock::now();
        seq_secs = std::chrono::duration<double>(s1 - s0).count();
        static_cast<void>(seq_report);
      }

      eval::MultiSessionParams params = tier.sessions;
      params.shards = ctx.shards;
      eval::MultiSessionDriver driver(topo.graph, params);
      const auto t0 = std::chrono::steady_clock::now();
      const eval::MultiSessionReport report =
          driver.run_seeded(tier_seed, pool);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();

      const double hit_pct =
          report.oracle.lookups > 0
              ? 100.0 * static_cast<double>(report.oracle.cache_hits) /
                    static_cast<double>(report.oracle.lookups)
              : 0.0;
      auto& rec = ctx.recorder;
      rec.add(prefix + "/det_members",
              static_cast<double>(report.aggregate_members));
      rec.add(prefix + "/det_tree_links",
              static_cast<double>(report.tree_links));
      rec.add(prefix + "/det_joins", static_cast<double>(report.join_ops));
      rec.add(prefix + "/oracle_hit_pct", hit_pct);
      rec.add(prefix + "/oracle_full_runs",
              static_cast<double>(report.oracle.full_runs));
      rec.add(prefix + "/joins_per_sec",
              secs > 0.0 ? static_cast<double>(report.join_ops) / secs : 0.0);
      rec.add(prefix + "/wall_s", secs);
      if (ctx.shards > 1 && secs > 0.0) {
        rec.add(prefix + "/shard_gain", seq_secs / secs);
      }
      if (const std::optional<double> rss = peak_rss_mb()) {
        rec.add(prefix + "/peak_rss_mb", *rss);
      } else if (!warned_rss) {
        warned_rss = true;
        std::cerr << "[bench_scale] warning: getrusage reports no peak RSS "
                     "on this platform; omitting peak_rss_mb series\n";
      }
      // Sessions (and their trees) free here — the peak reading above
      // already captured the fully resident tier.
    }
  });

  // Human-readable tier table from the recorded series.
  eval::Table table({"tier", "members", "tree links", "joins",
                     "oracle hit %", "full runs", "joins/s", "wall s", "gain",
                     "peak RSS MiB"});
  for (const Tier& tier : tiers) {
    const std::string p = tier.name;
    const eval::Summary rss = res.summary(p + "/peak_rss_mb");
    const eval::Summary gain = res.summary(p + "/shard_gain");
    table.add_row({p, eval::Table::fixed(res.summary(p + "/det_members").mean, 0),
                   eval::Table::fixed(res.summary(p + "/det_tree_links").mean, 0),
                   eval::Table::fixed(res.summary(p + "/det_joins").mean, 0),
                   eval::Table::fixed(
                       res.summary(p + "/oracle_hit_pct").mean, 1),
                   eval::Table::fixed(
                       res.summary(p + "/oracle_full_runs").mean, 0),
                   eval::Table::fixed(res.summary(p + "/joins_per_sec").mean, 0),
                   eval::Table::fixed(res.summary(p + "/wall_s").mean, 2),
                   gain.count > 0 ? eval::Table::fixed(gain.mean, 2) : "-",
                   rss.count > 0 ? eval::Table::fixed(rss.mean, 1) : "n/a"});
  }
  std::cout << "\n" << table.render() << "\n";
  return 0;
}
