// Multi-session scale sweep: how far one topology + one shared
// RoutingOracle stretch as nodes × sessions × members grow.
//
// Each tier generates a transit-stub topology, then drives N concurrent
// sessions through eval::MultiSessionDriver — Zipf session sizes, Poisson
// join/leave churn, sources drawn from the transit core so sessions share
// the oracle's SPF snapshots. The small/medium tiers run the full SMRP
// path-selection engine; the largest tier (100k nodes × 1,000 sessions,
// >100k aggregate members under the full profile) uses the SPF baseline
// engine, whose O(path) joins make session count — not per-join search —
// the measured variable. EXPERIMENTS.md records the tier rationale.
//
// Per tier the bench emits two kinds of series:
//   <tier>/det_*        bit-deterministic at a fixed seed (members, links,
//                       joins, oracle hit fraction) — CI regression-gates
//                       these exactly via bench_diff --series '*/det_*';
//   <tier>/joins_per_sec, <tier>/wall_s, <tier>/peak_rss_mb
//                       machine-dependent throughput / footprint. peak_rss
//                       is the process VmHWM after the tier's sessions are
//                       built and still resident, so it is monotone across
//                       tiers (tiers run smallest-first).
//
// `--smoke` swaps in reduced tiers for CI; the committed
// BENCH_scale-smoke.json is regenerated and diffed there, while
// BENCH_scale.json archives a full-profile run.
#include <chrono>
#include <iostream>
#include <string_view>
#include <sys/resource.h>
#include <vector>

#include "bench_common.hpp"
#include "eval/multi_session.hpp"
#include "eval/table.hpp"
#include "net/transit_stub.hpp"

namespace {

using namespace smrp;

/// Process peak RSS in MiB (ru_maxrss is KiB on Linux). Monotone: reads
/// the high-water mark, not the current footprint.
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Tier {
  const char* name;
  net::TransitStubParams topo;
  eval::MultiSessionParams sessions;
  int source_pool_cap;  ///< transit-core nodes used as session sources
};

net::TransitStubParams transit_stub(int transit, int stubs_per, int stub) {
  net::TransitStubParams p;
  p.transit_nodes = transit;
  p.stubs_per_transit = stubs_per;
  p.stub_size = stub;
  return p;
}

eval::MultiSessionParams session_load(int sessions, int min_size,
                                      int max_size, double churn,
                                      eval::SessionEngine engine) {
  eval::MultiSessionParams p;
  p.sessions = sessions;
  p.min_session_size = min_size;
  p.max_session_size = max_size;
  p.churn_events_per_session = churn;
  p.engine = engine;
  return p;
}

/// Full profile: the committed BENCH_scale.json. The last tier is the
/// acceptance point — 100,000 nodes, 1,000 concurrent sessions, and the
/// Zipf size range is chosen so aggregate membership lands well above
/// 100k members.
std::vector<Tier> full_tiers() {
  return {
      {"scale1k", transit_stub(20, 5, 10),
       session_load(50, 2, 64, 4.0, eval::SessionEngine::kSmrp), 16},
      {"scale10k", transit_stub(40, 8, 31),
       session_load(150, 2, 96, 4.0, eval::SessionEngine::kSmrp), 32},
      {"scale100k", transit_stub(100, 9, 111),
       session_load(1000, 4, 2000, 2.0, eval::SessionEngine::kSpf), 64},
  };
}

/// CI profile: same shape, runner-sized (~100 and ~500 nodes).
std::vector<Tier> smoke_tiers() {
  return {
      {"scale1k", transit_stub(8, 3, 4),
       session_load(12, 2, 16, 3.0, eval::SessionEngine::kSmrp), 4},
      {"scale10k", transit_stub(12, 4, 10),
       session_load(30, 2, 32, 3.0, eval::SessionEngine::kSmrp), 8},
      {"scale100k", transit_stub(16, 5, 12),
       session_load(60, 2, 64, 2.0, eval::SessionEngine::kSpf), 8},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;

  // This binary owns --smoke; strip it before the Runner sees argv so the
  // shared flag surface stays intact.
  bool smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }

  bench::Runner runner(static_cast<int>(args.size()), args.data(),
                       smoke ? "scale-smoke" : "scale",
                       "Multi-session capacity: nodes x sessions x members "
                       "over one shared routing oracle",
                       /*default_trials=*/1);
  const std::vector<Tier> tiers = smoke ? smoke_tiers() : full_tiers();
  for (const Tier& tier : tiers) {
    const int nodes = tier.topo.transit_nodes +
                      tier.topo.transit_nodes * tier.topo.stubs_per_transit *
                          tier.topo.stub_size;
    runner.config().set(std::string(tier.name) + "_nodes", nodes);
    runner.config().set(std::string(tier.name) + "_sessions",
                        tier.sessions.sessions);
    runner.config().set(std::string(tier.name) + "_max_session_size",
                        tier.sessions.max_session_size);
  }

  const eval::EngineResult& res = runner.run([&](eval::TrialContext& ctx) {
    net::Rng rng(ctx.seed);
    for (const Tier& tier : tiers) {
      const std::string prefix = tier.name;
      const auto t0 = std::chrono::steady_clock::now();
      const net::TransitStubTopology topo =
          net::generate_transit_stub(tier.topo, rng);

      // Sources: the first `source_pool_cap` transit-core routers. Every
      // session shares this pool, which is what makes the oracle's
      // per-source snapshots communal.
      std::vector<net::NodeId> pool(
          topo.nodes_of_domain[net::kTransitDomain].begin(),
          topo.nodes_of_domain[net::kTransitDomain].begin() +
              std::min<std::ptrdiff_t>(
                  tier.source_pool_cap,
                  static_cast<std::ptrdiff_t>(
                      topo.nodes_of_domain[net::kTransitDomain].size())));

      eval::MultiSessionDriver driver(topo.graph, tier.sessions);
      const eval::MultiSessionReport report = driver.run(rng, pool);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();

      const double hit_pct =
          report.oracle.lookups > 0
              ? 100.0 * static_cast<double>(report.oracle.cache_hits) /
                    static_cast<double>(report.oracle.lookups)
              : 0.0;
      auto& rec = ctx.recorder;
      rec.add(prefix + "/det_members",
              static_cast<double>(report.aggregate_members));
      rec.add(prefix + "/det_tree_links",
              static_cast<double>(report.tree_links));
      rec.add(prefix + "/det_joins", static_cast<double>(report.join_ops));
      rec.add(prefix + "/det_oracle_hit_pct", hit_pct);
      rec.add(prefix + "/joins_per_sec",
              secs > 0.0 ? static_cast<double>(report.join_ops) / secs : 0.0);
      rec.add(prefix + "/wall_s", secs);
      rec.add(prefix + "/peak_rss_mb", peak_rss_mb());
      // Sessions (and their trees) free here — the peak reading above
      // already captured the fully resident tier.
    }
  });

  // Human-readable tier table from the recorded series.
  eval::Table table({"tier", "members", "tree links", "joins",
                     "oracle hit %", "joins/s", "wall s", "peak RSS MiB"});
  for (const Tier& tier : tiers) {
    const std::string p = tier.name;
    table.add_row({p, eval::Table::fixed(res.summary(p + "/det_members").mean, 0),
                   eval::Table::fixed(res.summary(p + "/det_tree_links").mean, 0),
                   eval::Table::fixed(res.summary(p + "/det_joins").mean, 0),
                   eval::Table::fixed(
                       res.summary(p + "/det_oracle_hit_pct").mean, 1),
                   eval::Table::fixed(res.summary(p + "/joins_per_sec").mean, 0),
                   eval::Table::fixed(res.summary(p + "/wall_s").mean, 2),
                   eval::Table::fixed(res.summary(p + "/peak_rss_mb").mean, 1)});
  }
  std::cout << "\n" << table.render() << "\n";
  return 0;
}
