// Reproduces Figure 9: the effect of the Waxman edge-density parameter α
// (i.e. of the average node degree) on SMRP's relative performance.
//
// Paper setup (§4.3.3): N=100, N_G=30, D_thresh=0.3; α swept over
// {0.15, 0.2, 0.25, 0.3}; 100 scenarios per point; the average node degree
// realised by each α is reported under the axis.
//
// Paper's reported shape: the improvement diminishes slightly as the node
// degree grows (low-connectivity SPF trees concentrate members on few
// links, so SMRP has more to fix); ≈12% reduction is retained even around
// degree 10.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("fig9", "Effect of alpha / node degree (N=100, N_G=30, "
                        "D_thresh=0.3)",
                bench::kDefaultSeed);

  const double kAlphas[] = {0.15, 0.2, 0.25, 0.3};
  eval::Table table({"alpha", "avg degree", "RD_rel weight (95% CI)",
                     "RD_rel links (95% CI)", "Delay_rel (95% CI)",
                     "Cost_rel (95% CI)", "scenarios"});

  for (const double alpha : kAlphas) {
    eval::ScenarioParams params;
    params.node_count = 100;
    params.group_size = 30;
    params.alpha = alpha;
    params.smrp.d_thresh = 0.3;

    const eval::SweepCell cell =
        eval::run_sweep(params, /*topologies=*/10, /*member_sets=*/10,
                        bench::kDefaultSeed);

    table.add_row(
        {eval::Table::fixed(alpha, 2), eval::Table::fixed(cell.avg_degree, 2),
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half),
         std::to_string(cell.scenarios)});
  }
  std::cout << table.render()
            << "\npaper: improvement diminishes slightly as the degree "
               "grows; ≈12% reduction retained near degree 10\n"
               "(the link-count RD column tracks that trend; the weight "
               "column instead grows because geometric\n density shortens "
               "local detours — see EXPERIMENTS.md).\n\n";
  return 0;
}
