// Reproduces Figure 9: the effect of the Waxman edge-density parameter α
// (i.e. of the average node degree) on SMRP's relative performance.
//
// Paper setup (§4.3.3): N=100, N_G=30, D_thresh=0.3; α swept over
// {0.15, 0.2, 0.25, 0.3}; 100 scenarios per point; the average node degree
// realised by each α is reported under the axis.
//
// Paper's reported shape: the improvement diminishes slightly as the node
// degree grows (low-connectivity SPF trees concentrate members on few
// links, so SMRP has more to fix); ≈12% reduction is retained even around
// degree 10.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  const double kAlphas[] = {0.15, 0.2, 0.25, 0.3};

  bench::Runner runner(argc, argv, "fig9",
                       "Effect of alpha / node degree (N=100, N_G=30, "
                       "D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "alpha={0.15,0.2,0.25,0.3}");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const double alpha : kAlphas) {
          eval::ScenarioParams params;
          params.node_count = 100;
          params.group_size = 30;
          params.alpha = alpha;
          params.smrp.d_thresh = 0.3;
          bench::run_sweep_point(ctx, params,
                                 "alpha=" + eval::Table::fixed(alpha, 2));
        }
      });

  eval::Table table({"alpha", "avg degree", "RD_rel weight (95% CI)",
                     "RD_rel links (95% CI)", "Delay_rel (95% CI)",
                     "Cost_rel (95% CI)", "scenarios"});
  for (const double alpha : kAlphas) {
    const std::string prefix = "alpha=" + eval::Table::fixed(alpha, 2);
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    table.add_row(
        {eval::Table::fixed(alpha, 2),
         eval::Table::fixed(res.summary(prefix + "/avg_degree").mean, 2),
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half),
         std::to_string(rd.count)});
  }
  std::cout << table.render()
            << "\npaper: improvement diminishes slightly as the degree "
               "grows; ≈12% reduction retained near degree 10\n"
               "(the link-count RD column tracks that trend; the weight "
               "column instead grows because geometric\n density shortens "
               "local detours — see EXPERIMENTS.md).\n\n";
  return 0;
}
