// Hierarchical recovery architecture (§3.3.3) versus a flat session on
// transit-stub topologies: how far a failure's impact and repair spread.
//
// For every link that carries the session we compare:
//   * flat SMRP over the whole graph — recovery distance of each
//     disconnected member, repaired network-wide, and
//   * the 2-level architecture — the owning recovery domain repairs
//     internally; members of other domains are untouched.
#include <iostream>

#include "bench_common.hpp"
#include "eval/table.hpp"
#include "hier/hierarchical.hpp"
#include "net/transit_stub.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "hier-recovery",
                       "Flat vs hierarchical recovery on transit-stub "
                       "topologies (6 transit nodes x 2 stubs x 5 nodes)",
                       /*default_trials=*/6);
  runner.config().set("transit_nodes", 6);
  runner.config().set("stubs_per_transit", 2);
  runner.config().set("stub_size", 5);

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        net::Rng rng(ctx.seed);
        net::TransitStubParams params;
        params.transit_nodes = 6;
        params.stubs_per_transit = 2;
        params.stub_size = 5;
        const net::TransitStubTopology topo =
            net::generate_transit_stub(params, rng);

        const net::NodeId source = 0;  // a transit node
        // Three receivers per stub domain (skipping each domain's agent).
        std::vector<net::NodeId> members;
        for (net::DomainId d = 1; d < topo.domain_count(); ++d) {
          const auto& nodes =
              topo.nodes_of_domain[static_cast<std::size_t>(d)];
          for (std::size_t i = nodes.size() - 3; i < nodes.size(); ++i) {
            members.push_back(nodes[i]);
          }
        }

        proto::SmrpTreeBuilder flat(topo.graph, source);
        hier::HierarchicalSession hierarchical(topo, source);
        for (const net::NodeId m : members) {
          flat.join(m);
          hierarchical.join(m);
        }

        auto& rec = ctx.recorder;
        net::RoutingOracle oracle(topo.graph);
        for (const net::LinkId link : flat.tree().tree_links()) {
          rec.add("failures", 1.0);
          // Flat repair: every disconnected member runs a local detour
          // over the whole graph.
          const auto survivors = flat.tree().surviving_after_link(link);
          int flat_victims = 0;
          double flat_distance = 0.0;
          int spills = 0;
          for (const net::NodeId m : members) {
            if (survivors[static_cast<std::size_t>(m)]) continue;
            ++flat_victims;
            const auto out = proto::local_detour_recovery(
                topo.graph, flat.tree(), m, proto::Failure::of_link(link),
                &oracle);
            if (!out.recovered) continue;
            flat_distance += out.recovery_distance;
            // Confinement check: does the flat repair path wander through
            // a stub domain that is neither the victim's nor the transit
            // core?
            const net::DomainId home =
                topo.domain_of_node[static_cast<std::size_t>(m)];
            for (const net::NodeId hop : out.restoration_path) {
              const net::DomainId hd =
                  topo.domain_of_node[static_cast<std::size_t>(hop)];
              if (hd != home && hd != net::kTransitDomain) {
                ++spills;
                break;
              }
            }
          }
          rec.add("flat/rd", flat_distance);
          rec.add("flat/affected", flat_victims);
          rec.add("flat/spills", spills);

          // Hierarchical repair: confined to the owning domain.
          const hier::HierRecoveryOutcome out = hierarchical.recover(link);
          rec.add("hier/rd", out.recovery_distance);
          rec.add("hier/affected", out.disconnected_members);
        }
      });

  const auto count_of = [&](const char* series) {
    const eval::RunningStats* st = res.find(series);
    return static_cast<long long>(st != nullptr ? st->sum() + 0.5 : 0.0);
  };
  eval::Table table({"scheme", "mean RD per failure", "mean members affected",
                     "repairs crossing foreign stubs", "failures"});
  const auto f = res.summary("flat/rd");
  const auto h = res.summary("hier/rd");
  const long long failures = count_of("failures");
  table.add_row({"flat SMRP", eval::Table::with_ci(f.mean, f.ci95_half, 1),
                 eval::Table::fixed(res.summary("flat/affected").mean, 2),
                 std::to_string(count_of("flat/spills")),
                 std::to_string(failures)});
  table.add_row({"hierarchical (2-level)",
                 eval::Table::with_ci(h.mean, h.ci95_half, 1),
                 eval::Table::fixed(res.summary("hier/affected").mean, 2),
                 "0 (by construction)", std::to_string(failures)});
  std::cout << table.render()
            << "\nexpected: the hierarchical scheme confines each repair to "
               "the recovery domain owning the failure;\nflat repairs may "
               "wander through unrelated stub domains.\n\n";
  return 0;
}
