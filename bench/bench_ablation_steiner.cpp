// §4.2 check: "we expect that the results presented in this paper are
// also applicable to the cost-minimizing multicast routing protocols".
// This bench swaps the SPF baseline for the Takahashi–Matsuyama Steiner
// heuristic and re-runs the headline comparison.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "ablation-steiner",
                       "SMRP vs SPF baseline and vs cost-minimising "
                       "(Steiner) baseline (N=100, N_G=30, alpha=0.2, "
                       "D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "baseline={spf,steiner}");

  const auto key = [](eval::BaselineKind kind) {
    return kind == eval::BaselineKind::kSpf ? "baseline=spf"
                                            : "baseline=steiner";
  };
  const eval::BaselineKind kKinds[] = {eval::BaselineKind::kSpf,
                                       eval::BaselineKind::kSteiner};

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const auto kind : kKinds) {
          eval::ScenarioParams params;
          params.smrp.d_thresh = 0.3;
          params.baseline = kind;
          bench::run_sweep_point(ctx, params, key(kind));
        }
      });

  eval::Table table({"baseline", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const auto kind : kKinds) {
    const std::string prefix = key(kind);
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    table.add_row(
        {kind == eval::BaselineKind::kSpf ? "SPF (MOSPF/PIM)"
                                          : "Steiner (Takahashi-Matsuyama)",
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected (paper's §4.2 claim): SMRP's recovery-distance "
               "advantage persists against the cost-minimising tree;\nthe "
               "cost penalty grows (the Steiner tree is cheaper to begin "
               "with) and the delay penalty grows (Steiner paths are "
               "longer).\n\n";
  return 0;
}
