// §4.2 check: "we expect that the results presented in this paper are
// also applicable to the cost-minimizing multicast routing protocols".
// This bench swaps the SPF baseline for the Takahashi–Matsuyama Steiner
// heuristic and re-runs the headline comparison.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("ablation-steiner",
                "SMRP vs SPF baseline and vs cost-minimising (Steiner) "
                "baseline (N=100, N_G=30, alpha=0.2, D_thresh=0.3)",
                bench::kDefaultSeed);

  eval::Table table({"baseline", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const auto kind :
       {eval::BaselineKind::kSpf, eval::BaselineKind::kSteiner}) {
    eval::ScenarioParams params;
    params.smrp.d_thresh = 0.3;
    params.baseline = kind;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {kind == eval::BaselineKind::kSpf ? "SPF (MOSPF/PIM)"
                                          : "Steiner (Takahashi-Matsuyama)",
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected (paper's §4.2 claim): SMRP's recovery-distance "
               "advantage persists against the cost-minimising tree;\nthe "
               "cost penalty grows (the Steiner tree is cheaper to begin "
               "with) and the delay penalty grows (Steiner paths are "
               "longer).\n\n";
  return 0;
}
