// Reproduces Figure 7: recovery via local detour vs. global detour.
//
// Paper setup (§4.3.1): N=100, N_G=30, α=0.2, D_thresh=0.3; five random
// topologies, one random member set each; for every member R the worst-case
// failure (the source's incident link on R's path) is injected, and the
// scatter compares the recovery distance of the SPF global detour (x) with
// the SMRP local detour (y). Most points should fall below y=x; the paper
// reports a mean recovery-path reduction of ≈33%.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"
#include "net/waxman.hpp"

int main() {
  using namespace smrp;
  bench::banner("fig7",
                "Local vs global detour (N=100, N_G=30, alpha=0.2, "
                "D_thresh=0.3, 5 topologies)",
                bench::kDefaultSeed);

  eval::ScenarioParams params;
  params.node_count = 100;
  params.group_size = 30;
  params.alpha = 0.2;
  params.smrp.d_thresh = 0.3;

  net::WaxmanParams wax;
  wax.node_count = params.node_count;
  wax.alpha = params.alpha;
  wax.beta = params.beta;

  net::Rng root(bench::kDefaultSeed);
  eval::Table per_topology({"topology", "members", "mean RD global",
                            "mean RD local", "below y=x", "mean reduction"});

  std::vector<double> reductions;
  int below = 0;
  int above = 0;
  int on_diag = 0;

  for (int t = 0; t < 5; ++t) {
    net::Rng topo_rng = root.fork();
    const net::Graph g = net::waxman_graph(wax, topo_rng);
    net::Rng scenario_rng = topo_rng.fork();
    const eval::ScenarioResult r =
        eval::run_scenario_on_graph(g, params, scenario_rng);

    eval::RunningStats rd_global;
    eval::RunningStats rd_local;
    eval::RunningStats reduction;
    int topo_below = 0;
    int valid = 0;
    for (const eval::MemberComparison& m : r.members) {
      if (!m.valid) continue;
      ++valid;
      rd_global.add(m.rd_spf);
      rd_local.add(m.rd_smrp);
      reduction.add(m.rd_relative());
      reductions.push_back(m.rd_relative());
      if (m.rd_smrp < m.rd_spf) {
        ++below;
        ++topo_below;
      } else if (m.rd_smrp > m.rd_spf) {
        ++above;
      } else {
        ++on_diag;
      }
    }
    per_topology.add_row(
        {std::to_string(t), std::to_string(valid),
         eval::Table::fixed(rd_global.summary().mean, 1),
         eval::Table::fixed(rd_local.summary().mean, 1),
         std::to_string(topo_below) + "/" + std::to_string(valid),
         eval::Table::percent(reduction.summary().mean)});
  }

  std::cout << per_topology.render();
  const eval::Summary overall = eval::summarize(reductions);
  const int total = below + above + on_diag;
  std::cout << "\npoints below y=x: " << below << "/" << total << " ("
            << eval::Table::percent(static_cast<double>(below) / total)
            << "), above: " << above << ", on the diagonal: " << on_diag
            << "\nmean recovery-path reduction: "
            << eval::Table::percent_with_ci(overall.mean, overall.ci95_half)
            << "\npaper: most points below y=x; mean reduction ≈33%.\n\n";
  return 0;
}
