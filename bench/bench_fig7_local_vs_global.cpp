// Reproduces Figure 7: recovery via local detour vs. global detour.
//
// Paper setup (§4.3.1): N=100, N_G=30, α=0.2, D_thresh=0.3; five random
// topologies, one random member set each (one topology per trial); for
// every member R the worst-case failure (the source's incident link on
// R's path) is injected, and the scatter compares the recovery distance
// of the SPF global detour (x) with the SMRP local detour (y). Most
// points should fall below y=x; the paper reports a mean recovery-path
// reduction of ≈33%.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "fig7",
                       "Local vs global detour (N=100, N_G=30, alpha=0.2, "
                       "D_thresh=0.3)",
                       /*default_trials=*/5);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        eval::ScenarioParams params;
        params.node_count = 100;
        params.group_size = 30;
        params.alpha = 0.2;
        params.smrp.d_thresh = 0.3;

        net::Rng rng(ctx.seed);
        const net::Graph g = eval::make_topology(params, rng);
        const eval::ScenarioResult r =
            eval::run_scenario_on_graph(g, params, rng);

        const std::string topo = "topo=" + std::to_string(ctx.trial);
        auto& rec = ctx.recorder;
        for (const eval::MemberComparison& m : r.members) {
          if (!m.valid) continue;
          rec.add(topo + "/rd_global", m.rd_spf);
          rec.add(topo + "/rd_local", m.rd_smrp);
          rec.add(topo + "/reduction", m.rd_relative());
          rec.add(topo + "/below_diag", m.rd_smrp < m.rd_spf ? 1.0 : 0.0);
          rec.add("rd_global", m.rd_spf);
          rec.add("rd_local", m.rd_smrp);
          rec.add("reduction", m.rd_relative());
          rec.add("below_diag", m.rd_smrp < m.rd_spf ? 1.0 : 0.0);
          rec.add("above_diag", m.rd_smrp > m.rd_spf ? 1.0 : 0.0);
          rec.add("on_diag", m.rd_smrp == m.rd_spf ? 1.0 : 0.0);
        }
      });

  eval::Table per_topology({"topology", "members", "mean RD global",
                            "mean RD local", "below y=x", "mean reduction"});
  for (int t = 0; t < res.trials; ++t) {
    const std::string topo = "topo=" + std::to_string(t);
    const eval::Summary g = res.summary(topo + "/rd_global");
    const eval::Summary l = res.summary(topo + "/rd_local");
    const eval::Summary red = res.summary(topo + "/reduction");
    const eval::RunningStats* topo_below = res.find(topo + "/below_diag");
    const long long below_count = static_cast<long long>(
        topo_below != nullptr ? topo_below->sum() + 0.5 : 0.0);
    per_topology.add_row(
        {std::to_string(t), std::to_string(g.count),
         eval::Table::fixed(g.mean, 1), eval::Table::fixed(l.mean, 1),
         std::to_string(below_count) + "/" + std::to_string(g.count),
         eval::Table::percent(red.mean)});
  }

  std::cout << per_topology.render();
  const eval::Summary overall = res.summary("reduction");
  const eval::RunningStats* below = res.find("below_diag");
  const eval::RunningStats* above = res.find("above_diag");
  const eval::RunningStats* diag = res.find("on_diag");
  const auto count_of = [](const eval::RunningStats* s) {
    return static_cast<long long>(s != nullptr ? s->sum() + 0.5 : 0.0);
  };
  const long long total = overall.count;
  std::cout << "\npoints below y=x: " << count_of(below) << "/" << total
            << " ("
            << eval::Table::percent(
                   total > 0 ? static_cast<double>(count_of(below)) / total
                             : 0.0)
            << "), above: " << count_of(above)
            << ", on the diagonal: " << count_of(diag)
            << "\nmean recovery-path reduction: "
            << eval::Table::percent_with_ci(overall.mean, overall.ci95_half)
            << "\npaper: most points below y=x; mean reduction ≈33%.\n\n";
  return 0;
}
