// Shared event-core workloads for bench_micro (google-benchmark) and
// bench_sim_core (bench::Runner + the committed BENCH_sim_core.json
// baseline). Both binaries must time the *same* work so the numbers are
// comparable, hence one header.
//
// Each timer carries a 32-byte protocol-shaped payload (owner pointer,
// session, sequence, deadline) — the realistic capture size for refresh/
// retry/delivery closures. It fits the wheel core's 64B SBO but overflows
// std::function's ~16B inline buffer, so the reference simulator pays the
// per-event allocation the rewrite was built to remove. Capture-free
// `[]{}` timers would hide exactly that cost.
//
// The workloads are templated over the simulator type so the identical
// code drives sim::Simulator (timing wheel) and sim::ReferenceSimulator
// (the retained pre-wheel priority_queue + std::function core).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/rng.hpp"
#include "net/waxman.hpp"
#include "sim/network.hpp"

namespace smrp::bench {

/// What a protocol timer closure really captures: who to notify plus
/// session/sequence/deadline bookkeeping. 32 bytes.
struct TimerPayload {
  std::uint64_t* counter;
  std::uint64_t session;
  std::uint64_t seq;
  double deadline;
};

/// Mixed schedule/cancel/fire churn: timers spread over ~0.5 s, 25% of
/// them cancelled while live (a 256-deep ring of victims), the clock
/// advanced every 64 schedules so firing interleaves with scheduling and
/// steady-state pending sits in the low thousands. Returns fired count
/// (also an optimisation sink).
template <typename Sim>
std::uint64_t event_churn(int total_events) {
  Sim s;
  std::uint64_t fired = 0;
  std::array<std::uint64_t, 256> ring{};  // recent EventIds, cancel victims
  std::uint32_t x = 0x9E3779B9u;          // xorshift32 delay stream
  for (int i = 0; i < total_events; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    const double delay = static_cast<double>(x & 2047) * 0.25;  // 0..512 ms
    const TimerPayload p{&fired, static_cast<std::uint64_t>(i & 255),
                         static_cast<std::uint64_t>(i), delay};
    const std::uint64_t id = s.schedule(delay, [p] { ++*p.counter; });
    std::uint64_t& slot = ring[static_cast<std::size_t>(i) & 255];
    if ((i & 3) == 0 && slot != 0) s.cancel(slot);
    slot = id;
    if ((i & 63) == 63) s.run_until(s.now() + 8.0);
  }
  s.run_all();
  return fired + s.processed();
}

/// Soft-state refresh storm: every session re-arms its 500 ms timeout
/// each round, cancelling the previous one long before it can fire — the
/// retry-timer pattern under chaos, where almost every scheduled event
/// dies by cancel. Total events = rounds * sessions.
template <typename Sim>
std::uint64_t timer_cancel_storm(int rounds, int sessions = 512) {
  Sim s;
  std::uint64_t expired = 0;
  std::vector<std::uint64_t> timer(static_cast<std::size_t>(sessions), 0);
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < sessions; ++k) {
      auto& id = timer[static_cast<std::size_t>(k)];
      if (id != 0) s.cancel(id);
      const TimerPayload p{&expired, static_cast<std::uint64_t>(k),
                           static_cast<std::uint64_t>(r), 500.0};
      id = s.schedule(500.0 + static_cast<double>(k & 7),
                      [p] { ++*p.counter; });
    }
    s.run_until(s.now() + 1.0);
  }
  s.run_all();
  return s.processed() + expired;
}

inline net::Graph flood_graph(int nodes = 64, std::uint64_t seed = 42) {
  net::Rng rng(seed);
  net::WaxmanParams params;
  params.node_count = nodes;
  return net::waxman_graph(params, rng);
}

/// Hop-by-hop dispatch flood on a prebuilt topology: every round, every
/// node broadcasts a DataMsg to its neighbors and each neighbor unicasts
/// an ack back, then the round drains. Returns messages delivered (the
/// per-message work being measured). Sim/network construction is inside
/// the call but amortises to nothing against rounds * ~4 msgs/node.
inline std::uint64_t message_flood(const net::Graph& graph, int rounds) {
  sim::Simulator simulator;
  sim::SimNetwork network(simulator, graph);
  for (sim::NodeId n = 0; n < graph.node_count(); ++n) {
    network.set_handler(
        n, [&network, n](sim::NodeId from, const sim::Message& m) {
          if (const auto* data = std::get_if<sim::DataMsg>(&m);
              data != nullptr && data->seq != 0) {
            network.send(n, from, sim::DataMsg{0});  // ack, not re-acked
          }
        });
  }
  for (int r = 0; r < rounds; ++r) {
    for (sim::NodeId n = 0; n < graph.node_count(); ++n) {
      network.broadcast(n, sim::DataMsg{static_cast<std::uint64_t>(r + 1)});
    }
    simulator.run_all();
  }
  return network.messages_delivered();
}

}  // namespace smrp::bench
