// Endurance extension: a session weathers a sequence of persistent link
// failures (each repaired before the next hits, all staying down). SMRP
// repairs via local detours, the SPF baseline via global detours, against
// identical accumulated damage. The paper's single-failure advantage
// should compound across the sequence.
#include <iostream>

#include "bench_common.hpp"
#include "eval/failure_sequence.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("failure-sequence",
                "Sequences of 6 persistent failures (N=100, N_G=30, "
                "alpha=0.2, D_thresh=0.3, 25 sequences)",
                bench::kDefaultSeed);

  eval::FailureSequenceParams params;
  params.scenario.smrp.d_thresh = 0.3;
  params.failures = 6;

  net::Rng root(bench::kDefaultSeed);
  std::vector<eval::RunningStats> rd_smrp(
      static_cast<std::size_t>(params.failures));
  std::vector<eval::RunningStats> rd_spf(
      static_cast<std::size_t>(params.failures));
  eval::RunningStats survivors_smrp;
  eval::RunningStats survivors_spf;
  eval::RunningStats total_smrp;
  eval::RunningStats total_spf;

  for (int run = 0; run < 25; ++run) {
    net::Rng rng = root.fork();
    const eval::FailureSequenceResult r =
        eval::run_failure_sequence(params, rng);
    for (std::size_t i = 0; i < r.steps.size(); ++i) {
      rd_smrp[i].add(r.steps[i].rd_smrp);
      rd_spf[i].add(r.steps[i].rd_spf);
    }
    survivors_smrp.add(r.final_members_smrp);
    survivors_spf.add(r.final_members_spf);
    total_smrp.add(r.total_rd_smrp);
    total_spf.add(r.total_rd_spf);
  }

  eval::Table table({"failure #", "repair RD (SMRP local)",
                     "repair RD (SPF global)", "ratio"});
  for (int i = 0; i < params.failures; ++i) {
    const auto s = rd_smrp[static_cast<std::size_t>(i)].summary();
    const auto b = rd_spf[static_cast<std::size_t>(i)].summary();
    table.add_row({std::to_string(i + 1),
                   eval::Table::with_ci(s.mean, s.ci95_half, 1),
                   eval::Table::with_ci(b.mean, b.ci95_half, 1),
                   b.mean > 0 ? eval::Table::fixed(s.mean / b.mean, 2)
                              : "-"});
  }
  std::cout << table.render() << "\ncumulative repair distance: SMRP "
            << eval::Table::fixed(total_smrp.summary().mean, 1) << " vs SPF "
            << eval::Table::fixed(total_spf.summary().mean, 1)
            << "\nmembers still served after the barrage: SMRP "
            << eval::Table::fixed(survivors_smrp.summary().mean, 1)
            << " / SPF " << eval::Table::fixed(survivors_spf.summary().mean, 1)
            << " (of 30)\n\nexpected: the local-detour advantage compounds "
               "across successive failures.\n\n";
  return 0;
}
