// Endurance extension: a session weathers a sequence of persistent link
// failures (each repaired before the next hits, all staying down). SMRP
// repairs via local detours, the SPF baseline via global detours, against
// identical accumulated damage. The paper's single-failure advantage
// should compound across the sequence.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "eval/failure_sequence.hpp"
#include "eval/table.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  constexpr int kFailures = 6;
  bench::Runner runner(argc, argv, "failure-sequence",
                       "Sequences of 6 persistent failures (N=100, N_G=30, "
                       "alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/25);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("failures", kFailures);

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        eval::FailureSequenceParams params;
        params.scenario.smrp.d_thresh = 0.3;
        params.failures = kFailures;

        net::Rng rng(ctx.seed);
        const eval::FailureSequenceResult r =
            eval::run_failure_sequence(params, rng);
        auto& rec = ctx.recorder;
        for (std::size_t i = 0; i < r.steps.size(); ++i) {
          const std::string step = "step=" + std::to_string(i + 1);
          rec.add(step + "/rd_smrp", r.steps[i].rd_smrp);
          rec.add(step + "/rd_spf", r.steps[i].rd_spf);
        }
        rec.add("survivors_smrp", r.final_members_smrp);
        rec.add("survivors_spf", r.final_members_spf);
        rec.add("total_rd_smrp", r.total_rd_smrp);
        rec.add("total_rd_spf", r.total_rd_spf);
      });

  eval::Table table({"failure #", "repair RD (SMRP local)",
                     "repair RD (SPF global)", "ratio"});
  for (int i = 0; i < kFailures; ++i) {
    const std::string step = "step=" + std::to_string(i + 1);
    const eval::Summary s = res.summary(step + "/rd_smrp");
    const eval::Summary b = res.summary(step + "/rd_spf");
    table.add_row({std::to_string(i + 1),
                   eval::Table::with_ci(s.mean, s.ci95_half, 1),
                   eval::Table::with_ci(b.mean, b.ci95_half, 1),
                   b.mean > 0 ? eval::Table::fixed(s.mean / b.mean, 2)
                              : "-"});
  }
  std::cout << table.render() << "\ncumulative repair distance: SMRP "
            << eval::Table::fixed(res.summary("total_rd_smrp").mean, 1)
            << " vs SPF "
            << eval::Table::fixed(res.summary("total_rd_spf").mean, 1)
            << "\nmembers still served after the barrage: SMRP "
            << eval::Table::fixed(res.summary("survivors_smrp").mean, 1)
            << " / SPF "
            << eval::Table::fixed(res.summary("survivors_spf").mean, 1)
            << " (of 30)\n\nexpected: the local-detour advantage compounds "
               "across successive failures.\n\n";
  return 0;
}
