// Ablation for §3.3.1: joining via the neighbor-relayed query scheme
// (no global topology knowledge) versus full-topology path selection.
// The paper predicts the query scheme "does not guarantee to obtain SHR
// for all on-tree nodes and the selected multicast path may not be
// optimal, thus degrading the protocol performance".
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("ablation-query",
                "Full-topology join vs query-scheme join (N=100, N_G=30, "
                "alpha=0.2, D_thresh=0.3)",
                bench::kDefaultSeed);

  eval::Table table({"join mode", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel", "fallback joins"});
  for (const bool query : {false, true}) {
    eval::ScenarioParams params;
    params.smrp.d_thresh = 0.3;
    params.use_query_scheme = query;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {query ? "query scheme" : "full topology",
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half),
         std::to_string(cell.fallback_joins)});
  }
  std::cout << table.render()
            << "\nexpected: the query scheme keeps most of the benefit but "
               "degrades RD reduction (smaller candidate sets).\n\n";
  return 0;
}
