// Ablation for §3.3.1: joining via the neighbor-relayed query scheme
// (no global topology knowledge) versus full-topology path selection.
// The paper predicts the query scheme "does not guarantee to obtain SHR
// for all on-tree nodes and the selected multicast path may not be
// optimal, thus degrading the protocol performance".
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "ablation-query",
                       "Full-topology join vs query-scheme join (N=100, "
                       "N_G=30, alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "join_mode={full,query}");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const bool query : {false, true}) {
          eval::ScenarioParams params;
          params.smrp.d_thresh = 0.3;
          params.use_query_scheme = query;
          bench::run_sweep_point(
              ctx, params, std::string("join=") + (query ? "query" : "full"));
        }
      });

  eval::Table table({"join mode", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel", "fallback joins"});
  for (const bool query : {false, true}) {
    const std::string prefix =
        std::string("join=") + (query ? "query" : "full");
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    const eval::RunningStats* fallbacks =
        res.find(prefix + "/fallback_joins");
    table.add_row(
        {query ? "query scheme" : "full topology",
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half),
         std::to_string(static_cast<long long>(
             fallbacks != nullptr ? fallbacks->sum() + 0.5 : 0.0))});
  }
  std::cout << table.render()
            << "\nexpected: the query scheme keeps most of the benefit but "
               "degrades RD reduction (smaller candidate sets).\n\n";
  return 0;
}
