// Extension experiment: the paper's failure model includes incapacitated
// *nodes* as well as cut links (§1), but §4 only evaluates link cuts.
// This bench repeats the Fig-8-style comparison under worst-case node
// failures — the source's on-tree child on each member's path dies,
// taking all of its incident links with it.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("node-failure",
                "Worst-case NODE failures (N=100, N_G=30, alpha=0.2): "
                "SMRP local detour vs SPF global detour",
                bench::kDefaultSeed);

  eval::Table table({"D_thresh", "failure", "RD_rel weight (95% CI)",
                     "RD_rel links (95% CI)", "Delay_rel (95% CI)",
                     "scenarios"});
  for (const double d_thresh : {0.1, 0.3}) {
    for (const auto model :
         {eval::FailureModel::kWorstCaseLink,
          eval::FailureModel::kWorstCaseNode}) {
      eval::ScenarioParams params;
      params.smrp.d_thresh = d_thresh;
      params.failure_model = model;
      const eval::SweepCell cell =
          eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
      table.add_row(
          {eval::Table::fixed(d_thresh, 1),
           model == eval::FailureModel::kWorstCaseLink ? "link" : "node",
           eval::Table::percent_with_ci(cell.rd_relative.mean,
                                        cell.rd_relative.ci95_half),
           eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                        cell.rd_relative_hops.ci95_half),
           eval::Table::percent_with_ci(cell.delay_relative.mean,
                                        cell.delay_relative.ci95_half),
           std::to_string(cell.scenarios)});
    }
  }
  std::cout << table.render()
            << "\nexpected: node failures disable more of the tree than "
               "link cuts, yet the local detour's advantage persists.\n\n";
  return 0;
}
