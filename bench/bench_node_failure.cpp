// Extension experiment: the paper's failure model includes incapacitated
// *nodes* as well as cut links (§1), but §4 only evaluates link cuts.
// This bench repeats the Fig-8-style comparison under worst-case node
// failures — the source's on-tree child on each member's path dies,
// taking all of its incident links with it.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "node-failure",
                       "Worst-case NODE failures (N=100, N_G=30, alpha=0.2): "
                       "SMRP local detour vs SPF global detour",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("sweep",
                      "d_thresh={0.1,0.3} x failure={link,node}");

  const double kThresholds[] = {0.1, 0.3};
  const eval::FailureModel kModels[] = {eval::FailureModel::kWorstCaseLink,
                                        eval::FailureModel::kWorstCaseNode};
  const auto prefix_of = [](double d_thresh, eval::FailureModel model) {
    return "dthresh=" + eval::Table::fixed(d_thresh, 1) + ",fail=" +
           (model == eval::FailureModel::kWorstCaseLink ? "link" : "node");
  };

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const double d_thresh : kThresholds) {
          for (const auto model : kModels) {
            eval::ScenarioParams params;
            params.smrp.d_thresh = d_thresh;
            params.failure_model = model;
            bench::run_sweep_point(ctx, params, prefix_of(d_thresh, model));
          }
        }
      });

  eval::Table table({"D_thresh", "failure", "RD_rel weight (95% CI)",
                     "RD_rel links (95% CI)", "Delay_rel (95% CI)",
                     "scenarios"});
  for (const double d_thresh : kThresholds) {
    for (const auto model : kModels) {
      const std::string prefix = prefix_of(d_thresh, model);
      const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
      const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
      const eval::Summary delay = res.summary(prefix + "/delay_rel");
      table.add_row(
          {eval::Table::fixed(d_thresh, 1),
           model == eval::FailureModel::kWorstCaseLink ? "link" : "node",
           eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
           eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
           eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
           std::to_string(rd.count)});
    }
  }
  std::cout << table.render()
            << "\nexpected: node failures disable more of the tree than "
               "link cuts, yet the local detour's advantage persists.\n\n";
  return 0;
}
