// Event-core performance baseline: the timing-wheel Simulator versus the
// retained pre-wheel core (priority_queue + std::function,
// src/sim/reference_simulator.hpp), on the workloads the DES actually
// runs — mixed schedule/cancel/fire churn, soft-state cancel storms, and
// hop-by-hop message dispatch (sim_core_workloads.hpp, shared with
// bench_micro so the two binaries time identical work).
//
// Both cores run in the same process and trial, so the *speedup ratio*
// is machine-independent even though the absolute events/sec are not.
// CI's bench-smoke regression gate therefore compares the measured
// churn/speedup against the ratio stored in the committed
// BENCH_sim_core.json baseline (tolerance 0.7x), never wall-clock.
//
// Acceptance (ISSUE): churn/speedup mean >= 3x at ~1e6-event churn.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "eval/table.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim_core_workloads.hpp"

namespace {

using namespace smrp;

constexpr int kChurnEvents = 1 << 20;  // acceptance-scale churn
constexpr int kStormRounds = 1024;     // * 512 sessions = ~0.5M events
constexpr int kFloodRounds = 384;

template <typename Fn>
double seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "sim_core",
                       "Event-core throughput: timing wheel + pooled "
                       "events vs reference heap + std::function",
                       /*default_trials=*/5);
  runner.config().set("churn_events", kChurnEvents);
  runner.config().set("storm_rounds", kStormRounds);
  runner.config().set("storm_sessions", 512);
  runner.config().set("flood_nodes", 64);
  runner.config().set("flood_rounds", kFloodRounds);

  const net::Graph flood_graph = bench::flood_graph();

  const eval::EngineResult& res = runner.run([&](eval::TrialContext& ctx) {
    auto& rec = ctx.recorder;
    // Interleave the cores inside each trial so frequency drift hits
    // both sides of every ratio equally.
    std::uint64_t wheel_sum = 0;
    std::uint64_t ref_sum = 0;
    const double churn_wheel = seconds(
        [&] { wheel_sum = bench::event_churn<sim::Simulator>(kChurnEvents); });
    const double churn_ref = seconds([&] {
      ref_sum = bench::event_churn<sim::ReferenceSimulator>(kChurnEvents);
    });
    // Identical deterministic workload => identical fired counts; a
    // divergence would invalidate the comparison, so surface it hard.
    if (wheel_sum != ref_sum) {
      throw std::logic_error("event_churn diverged between cores");
    }
    rec.add("churn/wheel_meps", kChurnEvents / churn_wheel / 1e6);
    rec.add("churn/reference_meps", kChurnEvents / churn_ref / 1e6);
    rec.add("churn/speedup", churn_ref / churn_wheel);

    const double storm_events = kStormRounds * 512.0;
    const double storm_wheel = seconds([&] {
      wheel_sum = bench::timer_cancel_storm<sim::Simulator>(kStormRounds);
    });
    const double storm_ref = seconds([&] {
      ref_sum =
          bench::timer_cancel_storm<sim::ReferenceSimulator>(kStormRounds);
    });
    if (wheel_sum != ref_sum) {
      throw std::logic_error("timer_cancel_storm diverged between cores");
    }
    rec.add("cancel/wheel_meps", storm_events / storm_wheel / 1e6);
    rec.add("cancel/reference_meps", storm_events / storm_ref / 1e6);
    rec.add("cancel/speedup", storm_ref / storm_wheel);

    std::uint64_t delivered = 0;
    const double flood = seconds(
        [&] { delivered = bench::message_flood(flood_graph, kFloodRounds); });
    rec.add("flood/wheel_mmps",
            static_cast<double>(delivered) / flood / 1e6);
    rec.add("flood/delivered", static_cast<double>(delivered));
  });

  eval::Table table({"workload", "wheel (M/s)", "reference (M/s)",
                     "speedup"});
  const auto row = [&](const char* name, const char* prefix) {
    const eval::Summary w =
        res.summary(std::string(prefix) + "/wheel_meps");
    const eval::Summary r =
        res.summary(std::string(prefix) + "/reference_meps");
    const eval::Summary s = res.summary(std::string(prefix) + "/speedup");
    table.add_row({name, eval::Table::with_ci(w.mean, w.ci95_half, 1),
                   eval::Table::with_ci(r.mean, r.ci95_half, 1),
                   eval::Table::with_ci(s.mean, s.ci95_half, 2)});
  };
  row("event churn (1M, 25% cancel)", "churn");
  row("cancel storm (512 sessions)", "cancel");
  const eval::Summary flood = res.summary("flood/wheel_mmps");
  table.add_row({"message flood (64-node Waxman)",
                 eval::Table::with_ci(flood.mean, flood.ci95_half, 1), "-",
                 "-"});
  std::cout << table.render();

  const eval::Summary churn = res.summary("churn/speedup");
  std::cout << "\nchurn speedup (wheel vs reference heap, mean): "
            << eval::Table::fixed(churn.mean, 2)
            << "x  (acceptance floor: 3x; CI regression gate: >= 0.7x of "
               "the committed baseline ratio)\n\n";
  return 0;
}
