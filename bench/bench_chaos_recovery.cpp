// Service interruption under sustained chaos: the same seeded flap/crash
// plan (link flaps + a node crash/restart + a loss burst) is replayed
// against SMRP's hardened local repair and against the PIM-SPF global
// detour, and we account every member data-silence gap the faults cause.
// This extends the single-cut restoration-time bench (bench_restoration_
// time.cpp) to the persistent-failure regime the paper targets (§1, §3.3):
// under churn, PIM pays the unicast reconvergence wait on every fault,
// while the local detour keeps most interruptions near the detection time.
//
// Metric: an interruption is a gap > 4 data intervals between consecutive
// payloads at a member that is itself up. We report episode count, mean
// and max gap, total starved member-time, and members still dark at the
// end (after the plan has drained plus a settling margin).
//
// The SMRP variants additionally report the in-protocol convergence view
// (DESIGN.md §13): how many restored outages the source confirmed from
// protocol messages alone and how far its honest clock lagged the oracle
// (skew). A third variant enables SessionConfig::adaptive_triggers, the
// A/B for detection-driven fallback/reshape against the fixed timers.
#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"

namespace {

using namespace smrp;

struct ChaosResult {
  std::vector<double> gaps_ms;  ///< interruption episodes, all members
  double starved_ms = 0.0;      ///< total member-time without service
  int dark_members = 0;         ///< still starving once the plan drained
};

ChaosResult run_chaos(const net::Graph& g,
                      const std::vector<net::NodeId>& members,
                      proto::SessionConfig::Mode mode,
                      const sim::FaultPlan& plan,
                      obs::Telemetry* telemetry, bool adaptive = false) {
  // Same timer asymmetry as bench_restoration_time: data-driven multicast
  // detection is fast, the unicast IGP keeps conservative hello/dead
  // timers and an SPF hold-down.
  proto::SessionConfig config;
  config.mode = mode;
  config.adaptive_triggers = adaptive;
  config.data_interval = 25.0;
  config.refresh_interval = 50.0;
  config.upstream_timeout = 100.0;
  config.state_timeout = 400.0;
  config.repair_retry = 40.0;
  routing::RoutingConfig routing_config;
  routing_config.hello_interval = 500.0;
  routing_config.dead_interval = 2000.0;
  routing_config.spf_delay = 100.0;
  proto::SimulationHarness h(g, /*source=*/0, config, routing_config);
  if (telemetry != nullptr) h.attach_telemetry(telemetry);

  sim::ChaosController chaos(h.simulator(), h.network(), plan);
  h.start();
  for (const net::NodeId m : members) h.session().join(m);
  chaos.arm();

  const sim::Time settle = 1500.0;  // plans start after this (see main)
  const double gap_threshold = 4.0 * config.data_interval;
  const sim::Time end = plan.quiescent_time() + 15'000.0;

  ChaosResult result;
  std::vector<double> last_seen(members.size(), -1.0);
  for (sim::Time horizon = settle; horizon <= end; horizon += 25.0) {
    h.simulator().run_until(horizon);
    const sim::Time now = h.simulator().now();
    for (std::size_t i = 0; i < members.size(); ++i) {
      const sim::Time at = h.session().last_data_at(members[i]);
      if (at > last_seen[i]) {
        // A payload arrived; if it ended a long silence, record the gap.
        if (last_seen[i] >= 0.0 && at - last_seen[i] > gap_threshold) {
          result.gaps_ms.push_back(at - last_seen[i]);
          result.starved_ms += at - last_seen[i];
          if (telemetry != nullptr) {
            // The bench's OWN gap measurement, exported next to the
            // protocol's outage spans so trace_report can cross-check the
            // two accountings of the same interruptions.
            telemetry->metrics.histogram("smrp.bench.gap_ms")
                .record(at - last_seen[i]);
          }
        }
        last_seen[i] = at;
      } else if (h.network().node_up(members[i]) &&
                 now - std::max(last_seen[i], 0.0) > gap_threshold &&
                 now + 25.0 > end) {
        // Starving at the end of the run: an open-ended interruption.
        ++result.dark_members;
        result.starved_ms += now - std::max(last_seen[i], 0.0);
      }
    }
  }
  return result;
}

/// The honest-measurement view of one SMRP run: restored outages, how many
/// of them the source confirmed in-protocol, and the detection skews.
struct ConvergenceScan {
  int restored = 0;
  int confirmed = 0;
  std::vector<double> skews_ms;
};

ConvergenceScan scan_convergence(const obs::Telemetry& telemetry) {
  ConvergenceScan scan;
  std::set<obs::SpanId> restored;
  for (const obs::Span& span : telemetry.spans.spans()) {
    if (span.kind == "outage" && span.status == obs::SpanStatus::kOk) {
      restored.insert(span.id);
    }
  }
  scan.restored = static_cast<int>(restored.size());
  std::set<obs::SpanId> confirmed;
  for (const obs::Span& span : telemetry.spans.spans()) {
    if (span.kind != "convergence") continue;
    if (restored.count(span.parent) != 0) confirmed.insert(span.parent);
    const double* skew = span.attr("skew_ms");
    if (skew != nullptr) scan.skews_ms.push_back(*skew);
  }
  scan.confirmed = static_cast<int>(confirmed.size());
  return scan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "chaos-recovery",
                       "Service interruption under a seeded flap/crash plan, "
                       "SMRP local repair vs PIM over OSPF-lite (DES, N=50, "
                       "N_G=10, 10 faults per topology)",
                       /*default_trials=*/6);
  runner.config().set("node_count", 50);
  runner.config().set("group_size", 10);
  runner.config().set("link_flaps", 8);
  runner.config().set("node_restarts", 1);
  runner.config().set("loss_bursts", 1);
  runner.config().set("variants", "smrp,smrp_adaptive,pim");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        net::Rng rng(ctx.seed);
        net::WaxmanParams wax;
        wax.node_count = 50;
        const net::Graph g = net::waxman_graph(wax, rng);
        std::vector<net::NodeId> members;
        while (members.size() < 10) {
          const auto m = static_cast<net::NodeId>(1 + rng.below(49));
          if (std::find(members.begin(), members.end(), m) == members.end()) {
            members.push_back(m);
          }
        }

        // The standard drill: 8 link flaps, one node crash/restart, one
        // loss burst, drawn once per topology — both protocols replay the
        // exact same plan.
        sim::FaultPlan::RandomParams params;
        params.link_flaps = 8;
        params.node_restarts = 1;
        params.loss_bursts = 1;
        params.start = 2'000.0;
        params.window = 8'000.0;
        params.protected_nodes = {0};
        net::Rng plan_rng = rng.fork();
        const sim::FaultPlan plan =
            sim::FaultPlan::randomized(g, params, plan_rng);

        auto& rec = ctx.recorder;
        const std::string topo = std::to_string(ctx.trial);
        obs::Telemetry* smrp_telemetry = rec.telemetry("smrp-topo" + topo);
        obs::Telemetry* adaptive_telemetry =
            rec.telemetry("smrp-adaptive-topo" + topo);
        obs::Telemetry* pim_telemetry = rec.telemetry("pim-topo" + topo);
        // The convergence scan reads spans, so the SMRP runs carry a local
        // bundle even without --telemetry: attaching is pure observation
        // (seeded runs are bit-identical either way).
        obs::Telemetry smrp_local;
        obs::Telemetry adaptive_local;
        obs::Telemetry* smrp_obs =
            smrp_telemetry != nullptr ? smrp_telemetry : &smrp_local;
        obs::Telemetry* adaptive_obs = adaptive_telemetry != nullptr
                                           ? adaptive_telemetry
                                           : &adaptive_local;
        const ChaosResult smrp = run_chaos(
            g, members, proto::SessionConfig::Mode::kSmrp, plan, smrp_obs);
        const ChaosResult adaptive = run_chaos(
            g, members, proto::SessionConfig::Mode::kSmrp, plan, adaptive_obs,
            /*adaptive=*/true);
        const ChaosResult pim = run_chaos(
            g, members, proto::SessionConfig::Mode::kPimSpf, plan,
            pim_telemetry);
        const double run_end = plan.quiescent_time() + 15'000.0;
        rec.close_telemetry(smrp_telemetry, run_end);
        rec.close_telemetry(adaptive_telemetry, run_end);
        rec.close_telemetry(pim_telemetry, run_end);

        for (const double x : smrp.gaps_ms) rec.add("smrp/gap_ms", x);
        for (const double x : adaptive.gaps_ms) {
          rec.add("smrp_adaptive/gap_ms", x);
        }
        for (const double x : pim.gaps_ms) rec.add("pim/gap_ms", x);
        rec.add("smrp/starved_ms", smrp.starved_ms);
        rec.add("smrp_adaptive/starved_ms", adaptive.starved_ms);
        rec.add("pim/starved_ms", pim.starved_ms);
        rec.add("smrp/dark_members", smrp.dark_members);
        rec.add("smrp_adaptive/dark_members", adaptive.dark_members);
        rec.add("pim/dark_members", pim.dark_members);

        const ConvergenceScan base_conv = scan_convergence(*smrp_obs);
        const ConvergenceScan adapt_conv = scan_convergence(*adaptive_obs);
        for (const double x : base_conv.skews_ms) {
          rec.add("smrp/conv_skew_ms", x);
        }
        for (const double x : adapt_conv.skews_ms) {
          rec.add("smrp_adaptive/conv_skew_ms", x);
        }
        if (base_conv.restored > 0) {
          rec.add("smrp/conv_coverage",
                  static_cast<double>(base_conv.confirmed) /
                      static_cast<double>(base_conv.restored));
        }
        if (adapt_conv.restored > 0) {
          rec.add("smrp_adaptive/conv_coverage",
                  static_cast<double>(adapt_conv.confirmed) /
                      static_cast<double>(adapt_conv.restored));
        }
      });

  eval::Table table({"protocol", "interruptions", "mean gap (ms)",
                     "max gap (ms)", "starved member-s", "dark at end"});
  const eval::Summary s = res.summary("smrp/gap_ms");
  const eval::Summary a = res.summary("smrp_adaptive/gap_ms");
  const eval::Summary p = res.summary("pim/gap_ms");
  const auto sum_of = [&](const char* series) {
    const eval::RunningStats* st = res.find(series);
    return st != nullptr ? st->sum() : 0.0;
  };
  table.add_row({"SMRP local repair", std::to_string(s.count),
                 eval::Table::with_ci(s.mean, s.ci95_half, 1),
                 eval::Table::fixed(s.max, 1),
                 eval::Table::fixed(sum_of("smrp/starved_ms") / 1000.0, 2),
                 std::to_string(static_cast<long long>(
                     sum_of("smrp/dark_members") + 0.5))});
  table.add_row(
      {"SMRP adaptive triggers", std::to_string(a.count),
       eval::Table::with_ci(a.mean, a.ci95_half, 1),
       eval::Table::fixed(a.max, 1),
       eval::Table::fixed(sum_of("smrp_adaptive/starved_ms") / 1000.0, 2),
       std::to_string(static_cast<long long>(
           sum_of("smrp_adaptive/dark_members") + 0.5))});
  table.add_row({"PIM over OSPF-lite", std::to_string(p.count),
                 eval::Table::with_ci(p.mean, p.ci95_half, 1),
                 eval::Table::fixed(p.max, 1),
                 eval::Table::fixed(sum_of("pim/starved_ms") / 1000.0, 2),
                 std::to_string(static_cast<long long>(
                     sum_of("pim/dark_members") + 0.5))});
  std::cout << table.render();
  if (s.count > 0 && p.count > 0 && s.mean > 0.0) {
    std::cout << "\nmean-gap ratio (PIM / SMRP): "
              << eval::Table::fixed(p.mean / s.mean, 2) << "x\n";
  }
  const eval::Summary skew = res.summary("smrp/conv_skew_ms");
  const eval::Summary coverage = res.summary("smrp/conv_coverage");
  if (skew.count > 0) {
    const eval::RunningStats* st = res.find("smrp/conv_skew_ms");
    std::cout << "\nin-protocol convergence (DESIGN.md §13): "
              << eval::Table::fixed(100.0 * coverage.mean, 1)
              << "% of restored outages confirmed by the source, skew "
                 "median "
              << eval::Table::fixed(st->percentile(0.50), 1) << " ms, p90 "
              << eval::Table::fixed(st->percentile(0.90), 1) << " ms, max "
              << eval::Table::fixed(skew.max, 1) << " ms\n";
  }
  std::cout << "\npaper §1/§3.3: under persistent failures the local detour "
               "repairs before the IGP reconverges, so each fault costs "
               "roughly the detection time; the global detour pays the "
               "unicast re-stabilisation wait every time.\n\n";
  return 0;
}
