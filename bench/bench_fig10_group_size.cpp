// Reproduces Figure 10: the effect of the multicast group size N_G.
//
// Paper setup (§4.3.4): N=100, α=0.2, D_thresh=0.3; N_G swept over
// {20, 30, 40, 50}; 100 scenarios per point.
//
// Paper's reported shape: performance holds steady — ≈20% recovery-path
// reduction at ≈5% overhead — with a slight decrease of the improvement
// for larger groups (more members ⇒ more close neighbors ⇒ the SPF
// baseline recovers more easily too).
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("fig10", "Effect of group size (N=100, alpha=0.2, "
                         "D_thresh=0.3)",
                bench::kDefaultSeed);

  const int kGroupSizes[] = {20, 30, 40, 50};
  eval::Table table({"N_G", "RD_rel weight (95% CI)", "RD_rel links (95% CI)",
                     "Delay_rel (95% CI)", "Cost_rel (95% CI)", "scenarios",
                     "fallback joins"});

  for (const int group : kGroupSizes) {
    eval::ScenarioParams params;
    params.node_count = 100;
    params.group_size = group;
    params.alpha = 0.2;
    params.smrp.d_thresh = 0.3;

    const eval::SweepCell cell =
        eval::run_sweep(params, /*topologies=*/10, /*member_sets=*/10,
                        bench::kDefaultSeed);

    table.add_row(
        {std::to_string(group),
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half),
         std::to_string(cell.scenarios),
         std::to_string(cell.fallback_joins)});
  }
  std::cout << table.render()
            << "\npaper: steady ≈20% RD reduction at ≈5% overhead, with a "
               "slight decrease of the improvement as N_G grows.\n\n";
  return 0;
}
