// Reproduces Figure 10: the effect of the multicast group size N_G.
//
// Paper setup (§4.3.4): N=100, α=0.2, D_thresh=0.3; N_G swept over
// {20, 30, 40, 50}; 100 scenarios per point.
//
// Paper's reported shape: performance holds steady — ≈20% recovery-path
// reduction at ≈5% overhead — with a slight decrease of the improvement
// for larger groups (more members ⇒ more close neighbors ⇒ the SPF
// baseline recovers more easily too).
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  const int kGroupSizes[] = {20, 30, 40, 50};

  bench::Runner runner(argc, argv, "fig10",
                       "Effect of group size (N=100, alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "group_size={20,30,40,50}");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const int group : kGroupSizes) {
          eval::ScenarioParams params;
          params.node_count = 100;
          params.group_size = group;
          params.alpha = 0.2;
          params.smrp.d_thresh = 0.3;
          bench::run_sweep_point(ctx, params, "ng=" + std::to_string(group));
        }
      });

  eval::Table table({"N_G", "RD_rel weight (95% CI)", "RD_rel links (95% CI)",
                     "Delay_rel (95% CI)", "Cost_rel (95% CI)", "scenarios",
                     "fallback joins"});
  for (const int group : kGroupSizes) {
    const std::string prefix = "ng=" + std::to_string(group);
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    const eval::RunningStats* fallbacks =
        res.find(prefix + "/fallback_joins");
    table.add_row(
        {std::to_string(group),
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half),
         std::to_string(rd.count),
         std::to_string(static_cast<long long>(
             fallbacks != nullptr ? fallbacks->sum() + 0.5 : 0.0))});
  }
  std::cout << table.render()
            << "\npaper: steady ≈20% RD reduction at ≈5% overhead, with a "
               "slight decrease of the improvement as N_G grows.\n\n";
  return 0;
}
