// Ablation decomposing SMRP's gain into its two ingredients:
//   1. the recovery *policy* (local detour instead of the SPF global
//      detour), measurable on the unmodified SPF tree, and
//   2. the *tree shape* (SMRP's reduced path sharing), measurable as the
//      additional gain when local detour runs on the SMRP tree.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("ablation-local-on-spf",
                "Detour policy vs tree shape (N=100, N_G=30, alpha=0.2, "
                "D_thresh=0.3)",
                bench::kDefaultSeed);

  struct Row {
    const char* label;
    eval::RecoveryPolicy spf_policy;
    eval::RecoveryPolicy smrp_policy;
  };
  // RD_rel below always compares column "SPF tree policy" (as RD_SPF)
  // against "SMRP tree policy" (as RD_SMRP).
  const Row rows[] = {
      {"global on SPF  vs local on SMRP (paper's comparison)",
       eval::RecoveryPolicy::kGlobalDetour, eval::RecoveryPolicy::kLocalDetour},
      {"local on SPF   vs local on SMRP (tree-shape benefit only)",
       eval::RecoveryPolicy::kLocalDetour, eval::RecoveryPolicy::kLocalDetour},
      {"global on SPF  vs global on SMRP (policy removed)",
       eval::RecoveryPolicy::kGlobalDetour,
       eval::RecoveryPolicy::kGlobalDetour},
  };

  eval::Table table({"comparison", "RD_rel weight", "RD_rel links"});
  for (const Row& row : rows) {
    eval::ScenarioParams params;
    params.smrp.d_thresh = 0.3;
    params.spf_policy = row.spf_policy;
    params.smrp_policy = row.smrp_policy;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {row.label,
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected: both ingredients contribute; the paper's "
               "headline combines them.\n\n";
  return 0;
}
