// Ablation decomposing SMRP's gain into its two ingredients:
//   1. the recovery *policy* (local detour instead of the SPF global
//      detour), measurable on the unmodified SPF tree, and
//   2. the *tree shape* (SMRP's reduced path sharing), measurable as the
//      additional gain when local detour runs on the SMRP tree.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "ablation-local-on-spf",
                       "Detour policy vs tree shape (N=100, N_G=30, "
                       "alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "policy_pair={global-local,local-local,"
                               "global-global}");

  struct Row {
    const char* key;
    const char* label;
    eval::RecoveryPolicy spf_policy;
    eval::RecoveryPolicy smrp_policy;
  };
  // RD_rel below always compares column "SPF tree policy" (as RD_SPF)
  // against "SMRP tree policy" (as RD_SMRP).
  const Row rows[] = {
      {"global-local",
       "global on SPF  vs local on SMRP (paper's comparison)",
       eval::RecoveryPolicy::kGlobalDetour, eval::RecoveryPolicy::kLocalDetour},
      {"local-local",
       "local on SPF   vs local on SMRP (tree-shape benefit only)",
       eval::RecoveryPolicy::kLocalDetour, eval::RecoveryPolicy::kLocalDetour},
      {"global-global",
       "global on SPF  vs global on SMRP (policy removed)",
       eval::RecoveryPolicy::kGlobalDetour,
       eval::RecoveryPolicy::kGlobalDetour},
  };

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const Row& row : rows) {
          eval::ScenarioParams params;
          params.smrp.d_thresh = 0.3;
          params.spf_policy = row.spf_policy;
          params.smrp_policy = row.smrp_policy;
          bench::run_sweep_point(ctx, params, row.key);
        }
      });

  eval::Table table({"comparison", "RD_rel weight", "RD_rel links"});
  for (const Row& row : rows) {
    const std::string prefix = row.key;
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    table.add_row(
        {row.label, eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected: both ingredients contribute; the paper's "
               "headline combines them.\n\n";
  return 0;
}
