// Trial and reporting helpers shared by the scenario-sweep bench family
// (figs. 8–10 and the ablations): one engine trial evaluates every sweep
// point on the same seeded topology + member set, so points differ only
// by the swept parameter and the error bars compare like with like.
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

namespace smrp::bench {

/// Record the standard scenario series under `prefix` ("" for benches
/// with a single sweep point).
inline void record_scenario(eval::TrialRecorder& rec,
                            const std::string& prefix,
                            const eval::ScenarioResult& r) {
  const std::string p = prefix.empty() ? std::string{} : prefix + "/";
  rec.add(p + "rd_rel_weight", r.mean_rd_relative());
  rec.add(p + "rd_rel_hops", r.mean_rd_relative_hops());
  rec.add(p + "delay_rel", r.mean_delay_relative());
  rec.add(p + "cost_rel", r.cost_relative());
  rec.add(p + "avg_degree", r.avg_degree);
  rec.add(p + "reshapes", r.reshape_count);
  rec.add(p + "fallback_joins", r.fallback_joins);
  rec.add(p + "invalid_members",
          static_cast<double>(r.members.size()) - r.valid_member_count());
}

/// One sweep-point evaluation inside a trial: regenerate the topology and
/// member set from the trial seed (the identical stream for every point)
/// and record the standard series.
inline eval::ScenarioResult run_sweep_point(eval::TrialContext& ctx,
                                            const eval::ScenarioParams& params,
                                            const std::string& prefix) {
  net::Rng rng(ctx.seed);
  const net::Graph g = eval::make_topology(params, rng);
  const eval::ScenarioResult r = eval::run_scenario_on_graph(g, params, rng);
  record_scenario(ctx.recorder, prefix, r);
  return r;
}

/// Headers matching sweep_row(); `point_label` names the swept parameter.
inline std::vector<std::string> sweep_headers(std::string point_label) {
  return {std::move(point_label), "RD_rel weight (95% CI)",
          "RD_rel links (95% CI)", "Delay_rel (95% CI)", "Cost_rel (95% CI)",
          "scenarios", "reshapes"};
}

/// The standard table row for one sweep point, from the merged series.
inline std::vector<std::string> sweep_row(const eval::EngineResult& res,
                                          const std::string& prefix,
                                          std::string label) {
  const std::string p = prefix.empty() ? std::string{} : prefix + "/";
  const eval::Summary rd = res.summary(p + "rd_rel_weight");
  const eval::Summary rd_hops = res.summary(p + "rd_rel_hops");
  const eval::Summary delay = res.summary(p + "delay_rel");
  const eval::Summary cost = res.summary(p + "cost_rel");
  const eval::RunningStats* reshapes = res.find(p + "reshapes");
  return {std::move(label),
          eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
          eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
          eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
          eval::Table::percent_with_ci(cost.mean, cost.ci95_half),
          std::to_string(rd.count),
          std::to_string(static_cast<long long>(
              reshapes != nullptr ? reshapes->sum() + 0.5 : 0.0))};
}

}  // namespace smrp::bench
