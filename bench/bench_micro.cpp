// Google-benchmark microbenchmarks of the hot paths: SPF, candidate
// enumeration + selection, tree mutation with SHR maintenance, recovery
// searches, and the event core.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "eval/scenario.hpp"
#include "net/transit_stub.hpp"
#include "net/waxman.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim_core_workloads.hpp"
#include "smrp/path_selection.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

namespace {

using namespace smrp;

net::Graph make_graph(int nodes, std::uint64_t seed = 42) {
  net::Rng rng(seed);
  net::WaxmanParams params;
  params.node_count = nodes;
  return net::waxman_graph(params, rng);
}

void BM_Dijkstra(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  net::NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(g, src));
    src = (src + 1) % g.node_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

// The same SPF sweep through a reused DijkstraWorkspace: identical result
// trees (asserted by tests/net/test_shortest_path.cpp), but the dist/
// parent/hops/settled buffers and the heap storage are allocated once and
// recycled. The gap between this and BM_Dijkstra is the allocation tax
// the workspace removes from the per-member search loops.
void BM_DijkstraWorkspace(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  net::DijkstraWorkspace workspace;
  net::NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&workspace.run(g, src));
    src = (src + 1) % g.node_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DijkstraWorkspace)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_SmrpJoin(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  net::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    proto::SmrpTreeBuilder builder(g, 0);
    std::vector<net::NodeId> members;
    while (members.size() < 20) {
      const auto m =
          static_cast<net::NodeId>(1 + rng.below(g.node_count() - 1));
      if (std::find(members.begin(), members.end(), m) == members.end()) {
        members.push_back(m);
      }
    }
    state.ResumeTiming();
    for (const net::NodeId m : members) builder.join(m);
    benchmark::DoNotOptimize(builder.tree().total_cost());
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_SmrpJoin)->Arg(100)->Arg(200);

void BM_SpfJoin(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  net::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    baseline::SpfTreeBuilder builder(g, 0);
    std::vector<net::NodeId> members;
    while (members.size() < 20) {
      const auto m =
          static_cast<net::NodeId>(1 + rng.below(g.node_count() - 1));
      if (std::find(members.begin(), members.end(), m) == members.end()) {
        members.push_back(m);
      }
    }
    state.ResumeTiming();
    for (const net::NodeId m : members) builder.join(m);
    benchmark::DoNotOptimize(builder.tree().total_cost());
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_SpfJoin)->Arg(100)->Arg(200);

void BM_CandidateEnumeration(benchmark::State& state) {
  const net::Graph g = make_graph(100);
  proto::SmrpTreeBuilder builder(g, 0);
  for (net::NodeId m = 2; m < 60; m += 2) builder.join(m);
  const proto::SmrpConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::enumerate_candidates(
        g, builder.tree(), 61, builder.spf_delay(61), config));
  }
}
BENCHMARK(BM_CandidateEnumeration);

void BM_LocalDetour(benchmark::State& state) {
  const net::Graph g = make_graph(100);
  proto::SmrpTreeBuilder builder(g, 0);
  for (net::NodeId m = 2; m < 60; m += 2) builder.join(m);
  const net::NodeId victim = 58;
  const net::LinkId failed =
      proto::worst_case_failure_link(builder.tree(), victim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::local_detour_recovery(g, builder.tree(), victim, failed));
  }
}
BENCHMARK(BM_LocalDetour);

// Recovery search through the shared oracle (pooled workspaces) — what
// scenario.cpp's worst-case sweep and repair_session actually run.
void BM_LocalDetourOracle(benchmark::State& state) {
  const net::Graph g = make_graph(100);
  proto::SmrpTreeBuilder builder(g, 0);
  for (net::NodeId m = 2; m < 60; m += 2) builder.join(m);
  const net::NodeId victim = 58;
  const net::LinkId failed =
      proto::worst_case_failure_link(builder.tree(), victim);
  net::RoutingOracle oracle(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::local_detour_recovery(
        g, builder.tree(), victim, proto::Failure::of_link(failed),
        &oracle));
  }
}
BENCHMARK(BM_LocalDetourOracle);

// A persistent-failure chain: each step bans one more on-tree link and
// needs the source SPF under the grown exclusion set. The first victim's
// parent links come from the unconstrained SPF tree so every ban cuts
// live traffic and forces real rerouting.
std::vector<net::ExclusionSet> failure_chain(const net::Graph& g,
                                             net::NodeId source, int steps) {
  const net::ShortestPathTree base = net::dijkstra(g, source);
  std::vector<net::ExclusionSet> chain;
  net::ExclusionSet dead(g);
  for (net::NodeId n = 0; n < g.node_count() &&
                          static_cast<int>(chain.size()) < steps;
       ++n) {
    const net::LinkId l = base.parent_link[static_cast<std::size_t>(n)];
    if (l == net::kNoLink || dead.link_banned(l)) continue;
    dead.ban_link(l);
    chain.push_back(dead);
  }
  return chain;
}

// Baseline for BM_OracleRecovery: the pre-oracle behaviour, one fresh
// full Dijkstra per failure step.
void BM_FreshRecovery(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  const auto chain = failure_chain(g, 0, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(g, 0));
    for (const net::ExclusionSet& dead : chain) {
      benchmark::DoNotOptimize(net::dijkstra(g, 0, dead));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int>(chain.size() + 1));
}
BENCHMARK(BM_FreshRecovery)->Arg(100)->Arg(200)->Arg(400);

// The same chain through the oracle. invalidate() at the top of each
// iteration flushes the cache, so what is measured is one full run plus
// one *incremental repair* per failure step (not the trivial cache-hit
// path) — the acceptance gate wants this ≥1.5x over BM_FreshRecovery.
void BM_OracleRecovery(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  const auto chain = failure_chain(g, 0, 20);
  net::RoutingOracle oracle(g);
  for (auto _ : state) {
    oracle.invalidate();
    benchmark::DoNotOptimize(oracle.spf(0));
    for (const net::ExclusionSet& dead : chain) {
      benchmark::DoNotOptimize(oracle.spf(0, dead));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int>(chain.size() + 1));
}
BENCHMARK(BM_OracleRecovery)->Arg(100)->Arg(200)->Arg(400);

// run_sweep's workload: member sets on one topology share the oracle, so
// every join after the first set is served from cache.
void BM_OracleJoinSweep(benchmark::State& state) {
  const net::Graph g = make_graph(static_cast<int>(state.range(0)));
  net::Rng rng(7);
  std::vector<net::NodeId> members;
  while (members.size() < 20) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(g.node_count() - 1));
    if (std::find(members.begin(), members.end(), m) == members.end()) {
      members.push_back(m);
    }
  }
  net::RoutingOracle oracle(g);
  for (auto _ : state) {
    proto::SmrpTreeBuilder builder(g, 0, {}, &oracle);
    for (const net::NodeId m : members) builder.join(m);
    benchmark::DoNotOptimize(builder.tree().total_cost());
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_OracleJoinSweep)->Arg(100)->Arg(200);

// ---------------------------------------------------------------------------
// Shared-oracle hammers (DESIGN.md §16): K threads against ONE lock-striped
// RoutingOracle on a transit-stub topology — the run_seeded worker shape.
// BM_SharedOracleHammer is the hit path (prewarmed transit-core snapshots;
// measures striped-lookup throughput as K grows). BM_SharedOracleMissSweep
// is the dedup'd-miss case: every thread walks the same failure chain, so
// concurrent misses on one key are memoized and the whole run computes each
// key once (the `computed` counter vs `keys`). BM_PrivateOracle* are the
// pre-§16 comparison — one oracle per thread, so each thread recomputes
// every key and `computed` scales with K.

net::TransitStubTopology hammer_topology() {
  net::Rng rng(42);
  net::TransitStubParams p;
  p.transit_nodes = 12;
  p.stubs_per_transit = 4;
  p.stub_size = 8;  // 396 nodes: big enough to dwarf lock costs
  return net::generate_transit_stub(p, rng);
}

net::RoutingOracle::Config hammer_config() {
  net::RoutingOracle::Config config;
  config.max_entries = 4096;  // no eviction: the sweep measures dedup
  return config;
}

// google-benchmark only synchronizes threads at the state-loop boundary;
// code before the loop races with thread 0's setup, so the hammers
// publish their shared fixtures through this flag.
std::atomic<bool> hammer_ready{false};

void hammer_wait_ready(const benchmark::State& state) {
  if (state.thread_index() != 0) {
    while (!hammer_ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void BM_SharedOracleHammer(benchmark::State& state) {
  static net::TransitStubTopology* topo = nullptr;
  static net::RoutingOracle* oracle = nullptr;
  if (state.thread_index() == 0) {
    topo = new net::TransitStubTopology(hammer_topology());
    oracle = new net::RoutingOracle(topo->graph, hammer_config());
    for (const net::NodeId s : topo->nodes_of_domain[net::kTransitDomain]) {
      oracle->spf(s);  // prewarm: the loop measures pure hits
    }
    hammer_ready.store(true, std::memory_order_release);
  }
  hammer_wait_ready(state);
  const std::vector<net::NodeId>& sources =
      topo->nodes_of_domain[net::kTransitDomain];
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->spf(sources[i % sources.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto s = oracle->stats();
    state.counters["hit_pct"] =
        100.0 * static_cast<double>(s.cache_hits) /
        static_cast<double>(s.lookups);
    hammer_ready.store(false);
    delete oracle;
    delete topo;
    oracle = nullptr;
    topo = nullptr;
  }
}
BENCHMARK(BM_SharedOracleHammer)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_SharedOracleMissSweep(benchmark::State& state) {
  static net::TransitStubTopology* topo = nullptr;
  static net::RoutingOracle* oracle = nullptr;
  static std::vector<net::ExclusionSet>* chain = nullptr;
  if (state.thread_index() == 0) {
    topo = new net::TransitStubTopology(hammer_topology());
    oracle = new net::RoutingOracle(topo->graph, hammer_config());
    chain = new std::vector<net::ExclusionSet>(
        failure_chain(topo->graph, 0, 200));
  }
  std::size_t i = 0;  // every thread walks the SAME key sequence
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->spf(0, (*chain)[i % chain->size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto s = oracle->stats();
    // `computed` stays ~= keys at any K: concurrent misses dedup.
    state.counters["computed"] = static_cast<double>(s.cache_misses);
    state.counters["keys"] = static_cast<double>(chain->size());
    delete chain;
    delete oracle;
    delete topo;
    chain = nullptr;
    oracle = nullptr;
    topo = nullptr;
  }
}
BENCHMARK(BM_SharedOracleMissSweep)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_PrivateOracleHammer(benchmark::State& state) {
  static net::TransitStubTopology* topo = nullptr;
  if (state.thread_index() == 0) {
    topo = new net::TransitStubTopology(hammer_topology());
    hammer_ready.store(true, std::memory_order_release);
  }
  hammer_wait_ready(state);
  // Pre-§16 shape: each thread owns an oracle, so every thread pays its
  // own prewarm (untimed here) and holds its own snapshot copies.
  net::RoutingOracle oracle(topo->graph, hammer_config());
  const std::vector<net::NodeId>& sources =
      topo->nodes_of_domain[net::kTransitDomain];
  for (const net::NodeId s : sources) oracle.spf(s);
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.spf(sources[i % sources.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    hammer_ready.store(false);
    delete topo;
    topo = nullptr;
  }
}
BENCHMARK(BM_PrivateOracleHammer)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_PrivateOracleMissSweep(benchmark::State& state) {
  static net::TransitStubTopology* topo = nullptr;
  static std::vector<net::ExclusionSet>* chain = nullptr;
  static std::atomic<std::uint64_t> computed{0};
  static std::atomic<int> reported{0};
  if (state.thread_index() == 0) {
    topo = new net::TransitStubTopology(hammer_topology());
    chain = new std::vector<net::ExclusionSet>(
        failure_chain(topo->graph, 0, 200));
    computed.store(0);
    reported.store(0);
    hammer_ready.store(true, std::memory_order_release);
  }
  hammer_wait_ready(state);
  net::RoutingOracle oracle(topo->graph, hammer_config());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.spf(0, (*chain)[i % chain->size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  computed.fetch_add(oracle.stats().cache_misses);
  reported.fetch_add(1);
  if (state.thread_index() == 0) {
    // Post-loop code is not barrier-synchronized across benchmark
    // threads; wait until every thread has folded its private count in.
    while (reported.load() < state.threads()) std::this_thread::yield();
    // K private caches recompute the chain K times over: the number the
    // shared sweep's dedup removes.
    state.counters["computed"] = static_cast<double>(computed.load());
    state.counters["keys"] = static_cast<double>(chain->size());
    hammer_ready.store(false);
    delete chain;
    delete topo;
    chain = nullptr;
    topo = nullptr;
  }
}
BENCHMARK(BM_PrivateOracleMissSweep)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_GlobalDetour(benchmark::State& state) {
  const net::Graph g = make_graph(100);
  baseline::SpfTreeBuilder builder(g, 0);
  for (net::NodeId m = 2; m < 60; m += 2) builder.join(m);
  const net::NodeId victim = 58;
  const net::LinkId failed =
      proto::worst_case_failure_link(builder.tree(), victim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::global_detour_recovery(g, builder.tree(), victim, failed));
  }
}
BENCHMARK(BM_GlobalDetour);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule((i * 37) % 1000, [] {});
    }
    benchmark::DoNotOptimize(s.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

// Event-core workloads shared with bench_sim_core (sim_core_workloads.hpp),
// run against both the timing-wheel Simulator and the retained pre-wheel
// ReferenceSimulator so the speedup is visible side by side. The arg is
// the event count per iteration; 1<<20 is the acceptance-scale churn.

template <typename Sim>
void event_churn_bench(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::event_churn<Sim>(events));
  }
  state.SetItemsProcessed(state.iterations() * events);
}

void BM_EventChurn(benchmark::State& state) {
  event_churn_bench<sim::Simulator>(state);
}
BENCHMARK(BM_EventChurn)->Arg(1 << 16)->Arg(1 << 20);

void BM_EventChurnReference(benchmark::State& state) {
  event_churn_bench<sim::ReferenceSimulator>(state);
}
BENCHMARK(BM_EventChurnReference)->Arg(1 << 16)->Arg(1 << 20);

template <typename Sim>
void cancel_storm_bench(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::timer_cancel_storm<Sim>(rounds));
  }
  // 512 sessions re-armed per round.
  state.SetItemsProcessed(state.iterations() * rounds * 512);
}

void BM_TimerCancelStorm(benchmark::State& state) {
  cancel_storm_bench<sim::Simulator>(state);
}
BENCHMARK(BM_TimerCancelStorm)->Arg(256)->Arg(2048);

void BM_TimerCancelStormReference(benchmark::State& state) {
  cancel_storm_bench<sim::ReferenceSimulator>(state);
}
BENCHMARK(BM_TimerCancelStormReference)->Arg(256)->Arg(2048);

void BM_MessageFlood(benchmark::State& state) {
  const net::Graph g = bench::flood_graph();
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    delivered = bench::message_flood(g, rounds);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_MessageFlood)->Arg(64)->Arg(512);

void BM_FullScenario(benchmark::State& state) {
  eval::ScenarioParams params;
  params.node_count = 100;
  params.group_size = 30;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    net::Rng rng(seed++);
    benchmark::DoNotOptimize(eval::run_scenario(params, rng));
  }
}
BENCHMARK(BM_FullScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
