// Future-work extension (paper §5: "we are collecting Internet's topology
// to evaluate SMRP's applicability to real networks"): does SMRP's
// advantage survive on graph families other than Waxman? We match the
// mean degree across models so only the *structure* differs.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("topology-models",
                "SMRP vs SPF across graph families (N=100, N_G=30, "
                "D_thresh=0.3, matched mean degree ≈7)",
                bench::kDefaultSeed);

  struct Row {
    const char* label;
    eval::TopologyModel model;
  };
  const Row rows[] = {
      {"Waxman (paper's model)", eval::TopologyModel::kWaxman},
      {"Erdos-Renyi G(n,p)", eval::TopologyModel::kErdosRenyi},
      {"Barabasi-Albert (power law)", eval::TopologyModel::kBarabasiAlbert},
  };

  eval::Table table({"model", "avg degree", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const Row& row : rows) {
    eval::ScenarioParams params;
    params.topology = row.model;
    params.smrp.d_thresh = 0.3;
    params.target_degree = 7.0;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {row.label, eval::Table::fixed(cell.avg_degree, 2),
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected: the local-detour advantage is structural, not "
               "a Waxman artefact; power-law hubs concentrate\nsharing, so "
               "SMRP has headroom there too.\n\n";
  return 0;
}
