// Future-work extension (paper §5: "we are collecting Internet's topology
// to evaluate SMRP's applicability to real networks"): does SMRP's
// advantage survive on graph families other than Waxman? We match the
// mean degree across models so only the *structure* differs.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "topology-models",
                       "SMRP vs SPF across graph families (N=100, N_G=30, "
                       "D_thresh=0.3, matched mean degree ≈7)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("target_degree", 7.0);
  runner.config().set("sweep", "model={waxman,erdos-renyi,barabasi-albert}");

  struct Row {
    const char* key;
    const char* label;
    eval::TopologyModel model;
  };
  const Row rows[] = {
      {"model=waxman", "Waxman (paper's model)", eval::TopologyModel::kWaxman},
      {"model=erdos-renyi", "Erdos-Renyi G(n,p)",
       eval::TopologyModel::kErdosRenyi},
      {"model=barabasi-albert", "Barabasi-Albert (power law)",
       eval::TopologyModel::kBarabasiAlbert},
  };

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const Row& row : rows) {
          eval::ScenarioParams params;
          params.topology = row.model;
          params.smrp.d_thresh = 0.3;
          params.target_degree = 7.0;
          bench::run_sweep_point(ctx, params, row.key);
        }
      });

  eval::Table table({"model", "avg degree", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const Row& row : rows) {
    const std::string prefix = row.key;
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    table.add_row(
        {row.label,
         eval::Table::fixed(res.summary(prefix + "/avg_degree").mean, 2),
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half)});
  }
  std::cout << table.render()
            << "\nexpected: the local-detour advantage is structural, not "
               "a Waxman artefact; power-law hubs concentrate\nsharing, so "
               "SMRP has headroom there too.\n\n";
  return 0;
}
