// Reproduces Figure 8: the effect of D_thresh on SMRP's relative recovery
// distance, end-to-end delay, and tree cost.
//
// Paper setup (§4.3.2): N=100, N_G=30, α=0.2; D_thresh swept over four
// values; 10 random topologies × 10 random member sets = 100 scenarios per
// point; error bars are 95% confidence intervals; worst-case per-member
// failure (the source's incident link on the member's path).
//
// Paper's reported shape: RD^relative grows roughly linearly with D_thresh
// and reaches ≈20% at D_thresh=0.3, while the delay and cost penalties
// grow to ≈5%.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("fig8", "Effect of D_thresh (N=100, N_G=30, alpha=0.2)",
                bench::kDefaultSeed);

  const double kThresholds[] = {0.1, 0.2, 0.3, 0.4};
  eval::Table table({"D_thresh", "RD_rel weight (95% CI)",
                     "RD_rel links (95% CI)", "Delay_rel (95% CI)",
                     "Cost_rel (95% CI)", "scenarios", "reshapes"});

  for (const double d_thresh : kThresholds) {
    eval::ScenarioParams params;
    params.node_count = 100;
    params.group_size = 30;
    params.alpha = 0.2;
    params.smrp.d_thresh = d_thresh;

    const eval::SweepCell cell =
        eval::run_sweep(params, /*topologies=*/10, /*member_sets=*/10,
                        bench::kDefaultSeed);

    table.add_row(
        {eval::Table::fixed(d_thresh, 1),
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half),
         std::to_string(cell.scenarios), std::to_string(cell.reshapes)});
  }
  std::cout << table.render()
            << "\npaper: RD_rel grows ~linearly in D_thresh, ≈20% at 0.3;"
            << "\n       delay/cost penalties grow to ≈5% at 0.3.\n\n";
  return 0;
}
