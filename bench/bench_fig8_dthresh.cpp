// Reproduces Figure 8: the effect of D_thresh on SMRP's relative recovery
// distance, end-to-end delay, and tree cost.
//
// Paper setup (§4.3.2): N=100, N_G=30, α=0.2; D_thresh swept over four
// values; 100 scenarios per point (one per trial; the paper draws them as
// 10 random topologies × 10 random member sets); error bars are 95%
// confidence intervals; worst-case per-member failure (the source's
// incident link on the member's path).
//
// Paper's reported shape: RD^relative grows roughly linearly with D_thresh
// and reaches ≈20% at D_thresh=0.3, while the delay and cost penalties
// grow to ≈5%.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  const double kThresholds[] = {0.1, 0.2, 0.3, 0.4};

  bench::Runner runner(argc, argv, "fig8",
                       "Effect of D_thresh (N=100, N_G=30, alpha=0.2)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("sweep", "d_thresh={0.1,0.2,0.3,0.4}");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const double d_thresh : kThresholds) {
          eval::ScenarioParams params;
          params.node_count = 100;
          params.group_size = 30;
          params.alpha = 0.2;
          params.smrp.d_thresh = d_thresh;
          bench::run_sweep_point(
              ctx, params, "dthresh=" + eval::Table::fixed(d_thresh, 1));
        }
      });

  eval::Table table(bench::sweep_headers("D_thresh"));
  for (const double d_thresh : kThresholds) {
    const std::string label = eval::Table::fixed(d_thresh, 1);
    table.add_row(bench::sweep_row(res, "dthresh=" + label, label));
  }
  std::cout << table.render()
            << "\npaper: RD_rel grows ~linearly in D_thresh, ≈20% at 0.3;"
            << "\n       delay/cost penalties grow to ≈5% at 0.3.\n\n";
  return 0;
}
