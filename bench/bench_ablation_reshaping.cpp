// Ablation: how much of SMRP's benefit comes from tree reshaping
// (Conditions I & II, §3.2.3) versus the join-time path selection alone.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "ablation-reshaping",
                       "SMRP with vs without tree reshaping (N=100, N_G=30, "
                       "alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "reshaping={off,on}");

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const bool reshaping : {false, true}) {
          eval::ScenarioParams params;
          params.smrp.d_thresh = 0.3;
          params.smrp.enable_reshaping = reshaping;
          bench::run_sweep_point(
              ctx, params,
              std::string("reshaping=") + (reshaping ? "on" : "off"));
        }
      });

  eval::Table table({"reshaping", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel", "reshapes/scenario"});
  for (const bool reshaping : {false, true}) {
    const std::string prefix =
        std::string("reshaping=") + (reshaping ? "on" : "off");
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    table.add_row(
        {reshaping ? "on" : "off",
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half),
         eval::Table::fixed(res.summary(prefix + "/reshapes").mean, 2)});
  }
  std::cout << table.render()
            << "\nreshaping should add a few extra points of RD reduction "
               "at a modest extra cost.\n\n";
  return 0;
}
