// Ablation: how much of SMRP's benefit comes from tree reshaping
// (Conditions I & II, §3.2.3) versus the join-time path selection alone.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("ablation-reshaping",
                "SMRP with vs without tree reshaping (N=100, N_G=30, "
                "alpha=0.2, D_thresh=0.3)",
                bench::kDefaultSeed);

  eval::Table table({"reshaping", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel", "reshapes/scenario"});
  for (const bool reshaping : {false, true}) {
    eval::ScenarioParams params;
    params.smrp.d_thresh = 0.3;
    params.smrp.enable_reshaping = reshaping;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {reshaping ? "on" : "off",
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half),
         eval::Table::fixed(
             static_cast<double>(cell.reshapes) /
                 (cell.scenarios > 0 ? cell.scenarios : 1),
             2)});
  }
  std::cout << table.render()
            << "\nreshaping should add a few extra points of RD reduction "
               "at a modest extra cost.\n\n";
  return 0;
}
