// Ablation of the candidate-graft reading of footnote 4 (see
// smrp::proto::GraftMode): plain shortest-path grafts with first-hit merge
// validation (the default) vs tree-avoiding grafts that maximise the
// candidate set.
#include <iostream>

#include "bench_common.hpp"
#include "eval/scenario.hpp"
#include "eval/table.hpp"

int main() {
  using namespace smrp;
  bench::banner("ablation-graft-mode",
                "First-hit vs tree-avoiding candidate grafts (N=100, "
                "N_G=30, alpha=0.2, D_thresh=0.3)",
                bench::kDefaultSeed);

  eval::Table table({"graft mode", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const auto mode :
       {proto::GraftMode::kAvoidTree, proto::GraftMode::kFirstHit}) {
    eval::ScenarioParams params;
    params.smrp.d_thresh = 0.3;
    params.smrp.graft_mode = mode;
    const eval::SweepCell cell =
        eval::run_sweep(params, 10, 10, bench::kDefaultSeed);
    table.add_row(
        {mode == proto::GraftMode::kAvoidTree ? "avoid-tree (default)"
                                              : "first-hit",
         eval::Table::percent_with_ci(cell.rd_relative.mean,
                                      cell.rd_relative.ci95_half),
         eval::Table::percent_with_ci(cell.rd_relative_hops.mean,
                                      cell.rd_relative_hops.ci95_half),
         eval::Table::percent_with_ci(cell.delay_relative.mean,
                                      cell.delay_relative.ci95_half),
         eval::Table::percent_with_ci(cell.cost_relative.mean,
                                      cell.cost_relative.ci95_half)});
  }
  std::cout << table.render()
            << "\navoid-tree enlarges the candidate set: more dispersal, "
               "more RD gain, more cost/delay penalty.\n\n";
  return 0;
}
