// Ablation of the candidate-graft reading of footnote 4 (see
// smrp::proto::GraftMode): plain shortest-path grafts with first-hit merge
// validation (the default) vs tree-avoiding grafts that maximise the
// candidate set.
#include <iostream>

#include "bench_scenario.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "ablation-graft-mode",
                       "First-hit vs tree-avoiding candidate grafts (N=100, "
                       "N_G=30, alpha=0.2, D_thresh=0.3)",
                       /*default_trials=*/100);
  runner.config().set("node_count", 100);
  runner.config().set("group_size", 30);
  runner.config().set("alpha", 0.2);
  runner.config().set("d_thresh", 0.3);
  runner.config().set("sweep", "graft_mode={avoid-tree,first-hit}");

  const auto label = [](proto::GraftMode mode) {
    return mode == proto::GraftMode::kAvoidTree ? "avoid-tree" : "first-hit";
  };
  const proto::GraftMode kModes[] = {proto::GraftMode::kAvoidTree,
                                     proto::GraftMode::kFirstHit};

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        for (const auto mode : kModes) {
          eval::ScenarioParams params;
          params.smrp.d_thresh = 0.3;
          params.smrp.graft_mode = mode;
          bench::run_sweep_point(ctx, params,
                                 std::string("graft=") + label(mode));
        }
      });

  eval::Table table({"graft mode", "RD_rel weight", "RD_rel links",
                     "Delay_rel", "Cost_rel"});
  for (const auto mode : kModes) {
    const std::string prefix = std::string("graft=") + label(mode);
    const eval::Summary rd = res.summary(prefix + "/rd_rel_weight");
    const eval::Summary rd_hops = res.summary(prefix + "/rd_rel_hops");
    const eval::Summary delay = res.summary(prefix + "/delay_rel");
    const eval::Summary cost = res.summary(prefix + "/cost_rel");
    table.add_row(
        {mode == proto::GraftMode::kAvoidTree ? "avoid-tree (default)"
                                              : "first-hit",
         eval::Table::percent_with_ci(rd.mean, rd.ci95_half),
         eval::Table::percent_with_ci(rd_hops.mean, rd_hops.ci95_half),
         eval::Table::percent_with_ci(delay.mean, delay.ci95_half),
         eval::Table::percent_with_ci(cost.mean, cost.ci95_half)});
  }
  std::cout << table.render()
            << "\navoid-tree enlarges the candidate set: more dispersal, "
               "more RD gain, more cost/delay penalty.\n\n";
  return 0;
}
