// Restoration *time*, measured end-to-end in the packet-level simulator:
// SMRP's expanding-ring local repair versus the PIM-style global detour
// that must wait for the link-state unicast routing to reconverge. This
// reproduces the paper's motivating observation (§1, citing Wang et al.,
// ICNP 2000) that PIM recovery time is dominated by unicast
// re-stabilisation, and quantifies how much of it the local detour saves.
//
// Setup: Waxman N=60, N_G=12; one topology per trial; a session is built
// and allowed to settle; the worst-case link (the source's incident tree
// link carrying the most members) is cut; we record, per disconnected
// member, the time from the cut to the first payload delivered again.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "smrp/harness.hpp"

namespace {

using namespace smrp;

struct RunResult {
  std::vector<double> restoration_ms;  ///< per disconnected member
  int unrestored = 0;
  sim::Time end_time = 0.0;  ///< sim clock when the run finished
};

RunResult run_once(const net::Graph& g, const std::vector<net::NodeId>& members,
                   proto::SessionConfig::Mode mode,
                   obs::Telemetry* telemetry) {
  // Timer asymmetry modelled on deployed networks (and on the paper's
  // premise): multicast failure detection is data-driven and fast, while
  // the unicast IGP uses conservative hello/dead timers and an SPF
  // hold-down (classic OSPF defaults are 10s/40s — here scaled to keep
  // runs short while preserving the ~20:1 ratio).
  proto::SessionConfig config;
  config.mode = mode;
  config.data_interval = 25.0;
  config.refresh_interval = 50.0;
  config.upstream_timeout = 100.0;
  config.state_timeout = 400.0;
  config.repair_retry = 40.0;
  routing::RoutingConfig routing_config;
  routing_config.hello_interval = 500.0;
  routing_config.dead_interval = 2000.0;
  routing_config.spf_delay = 100.0;
  proto::SimulationHarness h(g, /*source=*/0, config, routing_config);
  if (telemetry != nullptr) h.attach_telemetry(telemetry);
  h.start();
  for (const net::NodeId m : members) h.session().join(m);
  const sim::Time settle = 3000.0;
  h.simulator().run_until(settle);

  // Cut the source's incident tree link carrying the most downstream
  // members (the paper's worst case, applied to the live session).
  const auto snapshot = h.session().snapshot_tree();
  RunResult result;
  result.end_time = h.simulator().now();
  if (!snapshot) return result;
  net::LinkId victim_link = net::kNoLink;
  int worst = -1;
  for (const net::NodeId child : snapshot->children(0)) {
    const net::LinkId candidate = snapshot->parent_link(child);
    // Skip bridges: a member with no physical alternative cannot recover
    // under either protocol, so it tells us nothing about the comparison.
    if (!g.connected_without(candidate)) continue;
    if (snapshot->subtree_members(child) > worst) {
      worst = snapshot->subtree_members(child);
      victim_link = candidate;
    }
  }
  if (victim_link == net::kNoLink) return result;
  const auto survivors = snapshot->surviving_after_link(victim_link);
  h.network().set_link_up(victim_link, false);
  const sim::Time fail_at = h.simulator().now();

  std::vector<net::NodeId> victims;
  for (const net::NodeId m : members) {
    if (!survivors[static_cast<std::size_t>(m)]) victims.push_back(m);
  }
  std::vector<char> restored(victims.size(), 0);
  sim::Time horizon = fail_at;
  std::size_t done = 0;
  while (done < victims.size() && horizon < fail_at + 30000.0) {
    horizon += 25.0;
    h.simulator().run_until(horizon);
    for (std::size_t i = 0; i < victims.size(); ++i) {
      if (restored[i]) continue;
      if (h.session().last_data_at(victims[i]) > fail_at) {
        restored[i] = 1;
        result.restoration_ms.push_back(
            h.session().last_data_at(victims[i]) - fail_at);
        if (telemetry != nullptr) {
          // The bench's own cut-to-first-payload measurement, exported
          // next to the protocol's outage spans for cross-checking.
          telemetry->metrics.histogram("smrp.bench.restoration_ms")
              .record(result.restoration_ms.back());
        }
        ++done;
      }
    }
  }
  // Tail past the last restoration so the in-protocol convergence wave
  // (DESIGN.md §13) can reach the source and confirm the episodes before
  // the run ends: reports climb one tree level per refresh interval, and
  // the detector holds the aggregate for ConvergenceConfig::hold on top.
  h.simulator().run_until(horizon + 3000.0);
  result.unrestored = static_cast<int>(victims.size() - done);
  result.end_time = h.simulator().now();
  return result;
}

/// Detection skews of every confirmed outage in a finished SMRP run.
std::vector<double> convergence_skews(const obs::Telemetry& telemetry) {
  std::vector<double> skews;
  for (const obs::Span& span : telemetry.spans.spans()) {
    if (span.kind != "convergence") continue;
    const double* skew = span.attr("skew_ms");
    if (skew != nullptr) skews.push_back(*skew);
  }
  return skews;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;
  bench::Runner runner(argc, argv, "restoration-time",
                       "Service restoration time, SMRP local repair vs "
                       "PIM/OSPF global detour (DES, N=60, N_G=12)",
                       /*default_trials=*/8);
  runner.config().set("node_count", 60);
  runner.config().set("group_size", 12);
  runner.config().set("settle_ms", 3000.0);
  runner.config().set("horizon_ms", 30000.0);

  const eval::EngineResult& res =
      runner.run([&](eval::TrialContext& ctx) {
        net::Rng rng(ctx.seed);
        net::WaxmanParams wax;
        wax.node_count = 60;
        const net::Graph g = net::waxman_graph(wax, rng);
        std::vector<net::NodeId> members;
        while (members.size() < 12) {
          const auto m = static_cast<net::NodeId>(1 + rng.below(59));
          if (std::find(members.begin(), members.end(), m) == members.end()) {
            members.push_back(m);
          }
        }
        auto& rec = ctx.recorder;
        const std::string topo = std::to_string(ctx.trial);
        obs::Telemetry* smrp_telemetry = rec.telemetry("smrp-topo" + topo);
        obs::Telemetry* pim_telemetry = rec.telemetry("pim-topo" + topo);
        // The honest-vs-oracle comparison reads convergence spans, so the
        // SMRP run always carries a bundle (pure observation: seeded runs
        // are bit-identical attached or detached).
        obs::Telemetry smrp_local;
        obs::Telemetry* smrp_obs =
            smrp_telemetry != nullptr ? smrp_telemetry : &smrp_local;
        const RunResult smrp = run_once(
            g, members, proto::SessionConfig::Mode::kSmrp, smrp_obs);
        const RunResult pim = run_once(
            g, members, proto::SessionConfig::Mode::kPimSpf, pim_telemetry);
        rec.close_telemetry(smrp_telemetry, smrp.end_time);
        rec.close_telemetry(pim_telemetry, pim.end_time);

        for (const double x : smrp.restoration_ms) {
          rec.add("smrp/restoration_ms", x);
        }
        for (const double x : pim.restoration_ms) {
          rec.add("pim/restoration_ms", x);
        }
        rec.add("smrp/unrestored", smrp.unrestored);
        rec.add("pim/unrestored", pim.unrestored);
        for (const double x : convergence_skews(*smrp_obs)) {
          rec.add("smrp/conv_skew_ms", x);
        }
      });

  eval::Table table({"protocol", "restored members", "mean (ms)",
                     "min (ms)", "max (ms)", "unrestored"});
  const eval::Summary s = res.summary("smrp/restoration_ms");
  const eval::Summary p = res.summary("pim/restoration_ms");
  const auto unrestored = [&](const char* series) {
    const eval::RunningStats* st = res.find(series);
    return static_cast<long long>(st != nullptr ? st->sum() + 0.5 : 0.0);
  };
  table.add_row({"SMRP local repair", std::to_string(s.count),
                 eval::Table::with_ci(s.mean, s.ci95_half, 1),
                 eval::Table::fixed(s.min, 1), eval::Table::fixed(s.max, 1),
                 std::to_string(unrestored("smrp/unrestored"))});
  table.add_row({"PIM over OSPF-lite", std::to_string(p.count),
                 eval::Table::with_ci(p.mean, p.ci95_half, 1),
                 eval::Table::fixed(p.min, 1), eval::Table::fixed(p.max, 1),
                 std::to_string(unrestored("pim/unrestored"))});
  std::cout << table.render();
  if (s.count > 0 && p.count > 0 && s.mean > 0.0) {
    std::cout << "\nspeedup (mean PIM / mean SMRP): "
              << eval::Table::fixed(p.mean / s.mean, 2) << "x\n";
  }
  const eval::Summary skew = res.summary("smrp/conv_skew_ms");
  if (skew.count > 0) {
    std::cout << "\nhonest vs oracle (DESIGN.md §13): the source confirmed "
              << skew.count << " outages in-protocol, lagging the "
                 "omniscient clock by "
              << eval::Table::with_ci(skew.mean, skew.ci95_half, 1)
              << " ms on average (max " << eval::Table::fixed(skew.max, 1)
              << " ms)\n";
  }
  std::cout << "\npaper/[25]: PIM recovery is dominated by unicast routing "
               "re-stabilisation; SMRP's local detour avoids that wait.\n\n";
  return 0;
}
